/**
 * @file
 * The full dee_lint pass: verify, analyze, cross-check.
 *
 * One LintReport per subject program. lintProgram() runs the verifier
 * and — when the program is structurally sound — the static profile
 * measurement (loops, dependence distances, ILP bounds).
 * lintWorkload() additionally cross-checks the measured profile
 * against the generator's declared ranges (workloads/profiles.hh).
 *
 * Every run feeds the `lint.*` subtree of the global stats registry so
 * manifests record what was linted and what was found.
 */

#ifndef DEE_ANALYSIS_LINT_HH
#define DEE_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "analysis/absint/bounds.hh"
#include "analysis/findings.hh"
#include "analysis/profile.hh"
#include "isa/isa.hh"
#include "obs/json.hh"
#include "workloads/workloads.hh"

namespace dee::analysis
{

/** Result of linting one program. */
struct LintReport
{
    /** What was linted, e.g. "eqntott scale=4" or a file name. */
    std::string subject;
    std::vector<Finding> findings;
    /** True when the program was sound enough to profile. */
    bool profiled = false;
    StaticProfile profile;
    /** True when the abstract-interpretation bounds were computed
     *  (same precondition as profiled). */
    bool boundsComputed = false;
    absint::StaticBounds bounds;

    /** No Error-severity findings (warnings allowed). */
    bool clean() const { return !anyError(findings); }

    /** Human-readable report: header, findings, profile table. */
    std::string renderText() const;

    /** {"subject", "clean", "findings": [...], "profile": {...},
     *  "bounds": {...}}. */
    obs::Json toJson() const;
};

/**
 * Verifies @p program and, if it has no structural errors, measures
 * its static profile. Never asserts on broken input — that is the
 * point of the pass.
 */
LintReport lintProgram(const std::string &subject, const Program &program);

/**
 * Lints makeWorkload(id, scale, seed) and cross-checks the measured
 * profile against the generator's declared ranges; drift is an Error
 * finding. At scale 1 with the calibrated seed 0, the computed
 * critical-path lower bound is additionally checked against the
 * generator's declared cpLowerScale1 range.
 */
LintReport lintWorkload(WorkloadId id, int scale,
                        std::uint64_t seed = 0);

/** Accumulates a report into the global `lint.*` registry counters. */
void recordLintStats(const LintReport &report);

/**
 * Re-ranks @p report's findings by speculation heat. @p profile_section
 * is the "profile" object of a dee.run.v3 manifest (scopes keyed
 * "<workload>.<model>"); scopes whose "workload" matches the report's
 * subject's first token contribute their per-branch squashed slots,
 * summed by block. Findings anchored to hot blocks move to the front
 * (hottest first, stable otherwise) and gain a
 * "[profile: N squashed slots]" message suffix.
 * @return the number of findings that were annotated.
 */
std::size_t annotateWithProfile(LintReport *report,
                                const obs::Json &profile_section);

} // namespace dee::analysis

#endif // DEE_ANALYSIS_LINT_HH
