#include "analysis/absint/bounds.hh"

#include <algorithm>
#include <sstream>

#include "analysis/dependence.hh"
#include "analysis/lint.hh"
#include "obs/manifest.hh"
#include "obs/registry.hh"

namespace dee::analysis::absint
{

const char *
branchClassName(BranchClass cls)
{
    switch (cls) {
      case BranchClass::Monotone: return "monotone";
      case BranchClass::StridePattern: return "stride-pattern";
      case BranchClass::DataDependent: return "data-dependent";
    }
    return "???";
}

namespace
{

const char *
memDepName(MemDepKind kind)
{
    switch (kind) {
      case MemDepKind::Independent: return "independent";
      case MemDepKind::Carried: return "carried";
      case MemDepKind::Unknown: return "unknown";
    }
    return "???";
}

std::string
hexSid(StaticId sid)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << sid;
    return oss.str();
}

/** The divisor/shift-amount abstract operand of an ALU instruction
 *  (the register form when rs2 is present, else the immediate). */
Interval
secondOperand(const Instruction &inst, const RegState &state)
{
    if (inst.rs2 != kNoReg) {
        return inst.rs2 == kZeroReg ? Interval::val(0)
                                    : state.regs[inst.rs2];
    }
    return Interval::val(inst.imm);
}

/** Findings the fixpoint surfaces: definite div-by-zero, shift amounts
 *  the machine will silently mask, statically one-sided branches, and
 *  loops with no provable bound. Emitted in program order. */
std::vector<Finding>
collectFindings(const Program &program, const Cfg &cfg,
                const IntervalResult &fix,
                const LoopForest &loops,
                const std::vector<LoopBound> &loop_bounds)
{
    std::vector<Finding> out;
    const std::size_t n = program.numBlocks();
    for (BlockId b = 0; b < n; ++b) {
        if (b >= fix.in.size() || !fix.in[b].reachable)
            continue;
        RegState state = fix.in[b];
        const auto &instrs = program.block(b).instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const Instruction &inst = instrs[i];
            const Interval rhs = secondOperand(inst, state);
            if (inst.op == Opcode::Div && rhs.isConst() &&
                rhs.constant() == 0) {
                out.push_back(
                    {FindingCode::IntervalDivByZero, b,
                     static_cast<std::int32_t>(i),
                     "divisor is provably zero (the machine defines "
                     "x/0 = 0)"});
            }
            if ((inst.op == Opcode::ShlI || inst.op == Opcode::ShrI ||
                 inst.op == Opcode::Sll || inst.op == Opcode::Srl) &&
                rhs.isConst() &&
                (rhs.constant() < 0 || rhs.constant() > 63)) {
                std::ostringstream msg;
                msg << "shift amount " << rhs.constant()
                    << " outside [0, 63]; the machine masks it to "
                    << (rhs.constant() & 63);
                out.push_back({FindingCode::ShiftRangeExceeded, b,
                               static_cast<std::int32_t>(i),
                               msg.str()});
            }
            applyInstr(inst, &state);
        }
        // A conditional branch whose fixpoint state makes one outcome
        // infeasible always goes the same way.
        if (!instrs.empty() && isCondBranch(instrs.back().op) &&
            state.reachable) {
            const Instruction &term = instrs.back();
            if (term.target != b + 1) {
                const RegState taken =
                    edgeState(fix, program, cfg, b, term.target);
                const RegState fall = b + 1 < n
                                          ? edgeState(fix, program, cfg,
                                                      b, b + 1)
                                          : RegState{};
                if (taken.reachable != fall.reachable) {
                    std::ostringstream msg;
                    msg << "branch outcome is statically constant "
                           "(always "
                        << (taken.reachable ? "taken" : "not taken")
                        << ")";
                    out.push_back(
                        {FindingCode::BranchAlwaysSame, b,
                         static_cast<std::int32_t>(
                             instrs.size() - 1),
                         msg.str()});
                }
            }
        }
    }
    for (std::size_t li = 0; li < loop_bounds.size(); ++li) {
        const LoopBound &lb = loop_bounds[li];
        if (lb.counted && lb.minTrip > 0)
            continue;
        std::ostringstream msg;
        msg << "loop at B" << lb.header
            << (lb.counted ? " has a counter but no provable minimum "
                             "trip count"
                           : " is not a recognizable counted loop; no "
                             "trip bound proven");
        out.push_back({FindingCode::LoopBoundUnknown,
                       loops.loops()[li].header, Finding::kNoInstr,
                       msg.str()});
    }
    if (!fix.converged) {
        std::ostringstream msg;
        msg << "interval solver hit its iteration cap after "
            << fix.visits << " block visits; bounds fell back to top";
        out.push_back({FindingCode::AbsintNoConvergence,
                       Finding::kNoBlock, Finding::kNoInstr,
                       msg.str()});
    }
    return out;
}

} // namespace

obs::Json
StaticBounds::toJson() const
{
    obs::Json j = obs::Json::object();
    j["blocks"] = static_cast<std::int64_t>(blocks);
    j["instrs"] = static_cast<std::int64_t>(instrs);
    j["cp_lower_bound"] = cpLowerBound;
    j["max_block_ilp"] = maxBlockIlp;
    j["serialized_ilp_bound"] = serializedIlpBound;
    j["spec_cp_max"] = specCpMax;
    j["converged"] = converged;

    obs::Json vl = obs::Json::object();
    vl["defs"] = static_cast<std::int64_t>(locality.defs);
    vl["constants"] = static_cast<std::int64_t>(locality.constants);
    vl["strides"] = static_cast<std::int64_t>(locality.strides);
    vl["last_values"] = static_cast<std::int64_t>(locality.lastValues);
    vl["varying"] = static_cast<std::int64_t>(locality.varying);
    vl["predictable_fraction"] = locality.predictableFraction();
    j["value_locality"] = std::move(vl);

    obs::Json ls = obs::Json::array();
    for (const LoopBound &lb : loops) {
        obs::Json l = obs::Json::object();
        l["header"] = static_cast<std::int64_t>(lb.header);
        l["depth"] = lb.depth;
        l["counted"] = lb.counted;
        l["mandatory"] = lb.mandatory;
        l["counter"] = lb.counter == kNoReg
                           ? obs::Json(-1)
                           : obs::Json(static_cast<int>(lb.counter));
        l["min_trip"] = lb.minTrip;
        l["max_trip"] = lb.maxTrip;
        l["body_instrs"] = static_cast<std::int64_t>(lb.bodyInstrs);
        l["ilp_bound"] = lb.ilpBound;
        l["mem_dep"] = memDepName(lb.memDep);
        l["mem_dep_distance"] = lb.memDepDistance;
        ls.push(std::move(l));
    }
    j["loops"] = std::move(ls);

    obs::Json bs = obs::Json::object();
    for (const BranchBound &bb : branches) {
        obs::Json b = obs::Json::object();
        b["block"] = static_cast<std::int64_t>(bb.block);
        b["class"] = branchClassName(bb.cls);
        b["banded"] = bb.banded;
        b["mispredict_hi"] = bb.mispredictHi;
        b["min_trip"] = bb.minTrip;
        bs[hexSid(bb.sid)] = std::move(b);
    }
    j["branches"] = std::move(bs);
    return j;
}

AbsintResult
analyzeProgram(const Program &program, const Cfg &cfg)
{
    AbsintResult result;
    StaticBounds &bounds = result.bounds;
    bounds.blocks = program.numBlocks();
    bounds.instrs = program.numInstrs();

    const Dominators doms(cfg);
    const LoopForest loops(cfg, doms);
    const IntervalResult fix = solveIntervals(program, cfg, loops);
    bounds.converged = fix.converged;

    const std::vector<CountedLoop> counted =
        findCountedLoops(program, cfg, loops, fix);
    bounds.locality = classifyValueLocality(program, loops, fix);
    const std::vector<MemDep> deps =
        analyzeLoopMemDeps(program, cfg, loops, counted);

    const DependenceSummary dep_summary = analyzeDependences(program);
    bounds.maxBlockIlp = dep_summary.maxBlockIlp;
    bounds.serializedIlpBound = dep_summary.serializedIlpBound;

    // Per-loop bounds, parallel to LoopForest::loops().
    const auto &forest = loops.loops();
    bounds.loops.resize(forest.size());
    for (std::size_t li = 0; li < forest.size(); ++li) {
        LoopBound &lb = bounds.loops[li];
        lb.header = forest[li].header;
        lb.depth = forest[li].depth;
        lb.bodyInstrs = 0;
        for (const BlockId b : forest[li].blocks)
            lb.bodyInstrs += program.block(b).instrs.size();
        lb.ilpBound = static_cast<double>(lb.bodyInstrs);
        if (li < deps.size()) {
            lb.memDep = deps[li].kind;
            lb.memDepDistance = deps[li].distance;
        }
    }
    for (const CountedLoop &cl : counted) {
        LoopBound &lb = bounds.loops[cl.loopIndex];
        lb.counted = true;
        lb.mandatory = cl.mandatory;
        lb.counter = cl.counter;
        lb.minTrip = cl.minTrip;
        lb.maxTrip = cl.maxTrip;
    }

    // Whole-program critical-path lower bound: the serial counter
    // chain of the deepest mandatory counted loop. Loops only nest or
    // sequence, so max (not sum) is the safe combination.
    bounds.cpLowerBound = 1;
    for (const CountedLoop &cl : counted) {
        if (cl.mandatory)
            bounds.cpLowerBound =
                std::max(bounds.cpLowerBound, cl.minTrip);
    }

    // Per-branch classes. Monotone: the test branch of a counted loop
    // with a proven minimum trip count. A band is only claimed when the
    // loop has exactly one test branch sited at its header or a latch
    // (so it runs every iteration and its outcome sequence is monotone
    // within an entry: a 2-bit counter mispredicts at most ~3 times
    // per entry).
    for (BlockId b = 0; b < program.numBlocks(); ++b) {
        const auto &instrs = program.block(b).instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            if (!isCondBranch(instrs[i].op))
                continue;
            BranchBound bb;
            bb.sid = program.staticId(b, i);
            bb.block = b;
            for (const CountedLoop &cl : counted) {
                const NaturalLoop &loop = forest[cl.loopIndex];
                const bool is_test =
                    std::find(cl.testBranches.begin(),
                              cl.testBranches.end(),
                              bb.sid) != cl.testBranches.end();
                if (is_test && cl.minTrip > 0) {
                    bb.cls = BranchClass::Monotone;
                    bb.minTrip = std::max(bb.minTrip, cl.minTrip);
                    const bool every_iter =
                        b == loop.header ||
                        (std::find(loop.latches.begin(),
                                   loop.latches.end(),
                                   b) != loop.latches.end() &&
                         i + 1 == instrs.size());
                    if (cl.testBranches.size() == 1 && every_iter) {
                        bb.banded = true;
                        bb.mispredictHi = std::min(
                            1.0,
                            3.0 / static_cast<double>(std::max<
                                      std::int64_t>(
                                      1, cl.minTrip - 1)) +
                                0.002);
                    }
                } else if (bb.cls != BranchClass::Monotone &&
                           loop.contains(b) &&
                           (instrs[i].rs1 == cl.counter ||
                            instrs[i].rs2 == cl.counter)) {
                    bb.cls = BranchClass::StridePattern;
                }
            }
            bounds.branches.push_back(bb);
        }
    }

    result.findings =
        collectFindings(program, cfg, fix, loops, bounds.loops);
    return result;
}

namespace
{

obs::Json
buildSection(const std::vector<WorkloadId> &ids, int scale,
             std::uint64_t seed, std::vector<LintReport> *reports_out)
{
    obs::Json sec = obs::Json::object();
    sec["schema"] = "dee.bounds.v1";
    sec["scale"] = static_cast<std::int64_t>(scale);
    sec["seed"] = seed;

    std::uint64_t errors = 0;
    std::uint64_t warnings = 0;
    std::uint64_t info = 0;
    obs::Json wls = obs::Json::object();
    for (const WorkloadId id : ids) {
        LintReport report = lintWorkload(id, scale, seed);
        errors += countAtSeverity(report.findings, Severity::Error);
        warnings += countAtSeverity(report.findings, Severity::Warning);
        info += countAtSeverity(report.findings, Severity::Info);
        if (report.boundsComputed)
            wls[workloadName(id)] = report.bounds.toJson();
        if (reports_out != nullptr)
            reports_out->push_back(std::move(report));
    }

    obs::Json lint = obs::Json::object();
    lint["programs"] = static_cast<std::int64_t>(ids.size());
    lint["errors"] = static_cast<std::int64_t>(errors);
    lint["warnings"] = static_cast<std::int64_t>(warnings);
    lint["info"] = static_cast<std::int64_t>(info);
    sec["lint"] = std::move(lint);
    sec["workloads"] = std::move(wls);
    return sec;
}

} // namespace

obs::Json
staticBoundsSection(const std::vector<WorkloadId> &ids, int scale,
                    std::uint64_t seed)
{
    return buildSection(ids, scale, seed, nullptr);
}

void
publishStaticBounds(const std::vector<WorkloadId> &ids, int scale,
                    std::uint64_t seed)
{
    std::vector<LintReport> reports;
    obs::Json section = buildSection(ids, scale, seed, &reports);
    obs::setStaticBoundsSection(std::move(section));

    obs::Registry &reg = obs::Registry::global();
    for (const LintReport &report : reports) {
        recordLintStats(report);
        if (!report.boundsComputed)
            continue;
        const std::string wl =
            report.subject.substr(0, report.subject.find(' '));
        const std::string base = "bounds." + wl + ".";
        reg.scalar(base + "cp_lower") =
            static_cast<double>(report.bounds.cpLowerBound);
        reg.scalar(base + "serialized_ilp") =
            report.bounds.serializedIlpBound;
        reg.scalar(base + "max_block_ilp") = report.bounds.maxBlockIlp;
        reg.scalar(base + "predictable_defs_frac") =
            report.bounds.locality.predictableFraction();
    }
}

} // namespace dee::analysis::absint
