/**
 * @file
 * Worklist abstract interpretation over the block CFG.
 *
 * A forward dataflow solver computes, per basic block, the interval of
 * every architectural register at block entry (domain.hh), with
 * widening at the natural-loop headers from cfg/structure.hh so the
 * fixpoint terminates on every program, followed by bounded narrowing
 * sweeps that recover precision lost to widening. Conditional-branch
 * edges refine both compared registers (e.g. the taken edge of
 * `blt r5, r6` tightens r5's upper and r6's lower bound).
 *
 * Three derived analyses ride the fixpoint:
 *
 *  - findCountedLoops(): loops whose every iteration provably advances
 *    one register by a bounded positive step toward a loop-invariant
 *    limit, with proven min/max trip counts. The counter's serial
 *    add chain is a critical-path *lower* bound no execution — and no
 *    speculation model, the paper's Oracle included — can beat.
 *  - classifyValueLocality(): per register-def predictability classes
 *    (constant / stride / last-value / varying), the static headroom
 *    measure value-prediction models need (ROADMAP item 4a).
 *  - analyzeLoopMemDeps(): symbolic affine addresses over the counted
 *    loops' counters, proving loops free of loop-carried memory
 *    dependences or bounding the minimum carried distance.
 */

#ifndef DEE_ANALYSIS_ABSINT_ABSINT_HH
#define DEE_ANALYSIS_ABSINT_ABSINT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/absint/domain.hh"
#include "cfg/cfg.hh"
#include "cfg/structure.hh"
#include "isa/isa.hh"

namespace dee::analysis::absint
{

/** Abstract machine state at one program point. */
struct RegState
{
    /** False = bottom: no execution reaches this point. */
    bool reachable = false;
    std::array<Interval, kNumRegs> regs{};

    const Interval &reg(RegId r) const { return regs[r]; }

    void join(const RegState &other);
    bool operator==(const RegState &other) const;
};

/** Interval fixpoint over a program. */
struct IntervalResult
{
    /** Block-entry states, indexed by block id. */
    std::vector<RegState> in;
    /** False when the solver hit its iteration cap (never expected —
     *  widening bounds the chain — but reported, not asserted). */
    bool converged = true;
    /** Total block visits the solver performed (test observability). */
    std::uint64_t visits = 0;
};

/** Runs the widening/narrowing worklist solver. */
IntervalResult solveIntervals(const Program &program, const Cfg &cfg,
                              const LoopForest &loops);

/** Applies one instruction's abstract transfer to @p state. */
void applyInstr(const Instruction &inst, RegState *state);

/**
 * The state propagated along CFG edge @p from -> @p to: @p from's
 * entry state pushed through the block, refined by the terminator's
 * comparison when the edge decides it. @p to == the taken target
 * selects the taken refinement; the fallthrough edge the other.
 */
RegState edgeState(const IntervalResult &fix, const Program &program,
                   const Cfg &cfg, BlockId from, BlockId to);

/** One recognized counted loop. */
struct CountedLoop
{
    /** Index into LoopForest::loops(). */
    std::size_t loopIndex = 0;
    BlockId header = 0;
    /** The counter register: every def inside the loop is
     *  `addi counter, counter, c` with c > 0. */
    RegId counter = kNoReg;
    /** Loop-invariant limit register every exit tests against. */
    RegId limit = kNoReg;
    std::int64_t minStep = 1;
    std::int64_t maxStep = 1;
    /** Counter / limit intervals joined over the entry edges. */
    Interval init = Interval::top();
    Interval limitAtEntry = Interval::top();
    /** Proven minimum counter increments per loop entry (0: none). */
    std::int64_t minTrip = 0;
    /** Upper bound on increments per entry; -1 when unbounded. */
    std::int64_t maxTrip = -1;
    /** True when the header postdominates the entry: every complete
     *  execution runs this loop. */
    bool mandatory = false;
    /** Conditional branches inside the loop comparing counter against
     *  limit (in either operand order). */
    std::vector<StaticId> testBranches;
    /** Static instructions in the loop body (header included). */
    std::uint64_t bodyInstrs = 0;
};

/**
 * Recognizes counted loops: all in-loop counter defs are positive
 * constant strides, the limit has no in-loop defs, and *every* edge
 * leaving the loop is a branch outcome implying counter >= limit.
 */
std::vector<CountedLoop> findCountedLoops(const Program &program,
                                          const Cfg &cfg,
                                          const LoopForest &loops,
                                          const IntervalResult &fix);

/** Static value-predictability class of one register def site. */
enum class DefClass : std::uint8_t
{
    Constant,  ///< post-fixpoint result interval is a singleton
    Stride,    ///< self-increment by a nonzero constant
    LastValue, ///< loop-invariant sources: same value every iteration
    Varying,   ///< anything else (loads, data-dependent arithmetic)
};

/** Def-site counts per DefClass over a whole program. */
struct LocalitySummary
{
    std::uint64_t defs = 0;
    std::uint64_t constants = 0;
    std::uint64_t strides = 0;
    std::uint64_t lastValues = 0;
    std::uint64_t varying = 0;

    /** Fraction of def sites a const/stride/last-value predictor could
     *  cover (the Mitrevski & Gusev headroom measure), in [0, 1]. */
    double predictableFraction() const;
};

/** Classifies every register-writing instruction (r0 writes are
 *  dropped by the machine and excluded). */
LocalitySummary classifyValueLocality(const Program &program,
                                      const LoopForest &loops,
                                      const IntervalResult &fix);

/** Loop-carried memory-dependence verdict for one loop. */
enum class MemDepKind : std::uint8_t
{
    Independent, ///< proven: no loop-carried memory dependence
    Carried,     ///< proven dependence; minimum distance known
    Unknown,     ///< some address was not affine in the counters
};

struct MemDep
{
    MemDepKind kind = MemDepKind::Unknown;
    /** Minimum carried distance in iterations (valid when Carried). */
    std::int64_t distance = 0;
};

/**
 * Per-loop (parallel to LoopForest::loops()) carried-dependence
 * verdicts from a symbolic affine-address analysis over the counted
 * loops' counter registers.
 */
std::vector<MemDep> analyzeLoopMemDeps(const Program &program,
                                       const Cfg &cfg,
                                       const LoopForest &loops,
                                       const std::vector<CountedLoop> &counted);

} // namespace dee::analysis::absint

#endif // DEE_ANALYSIS_ABSINT_ABSINT_HH
