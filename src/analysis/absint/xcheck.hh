/**
 * @file
 * Static <-> dynamic cross-check over a run manifest.
 *
 * crossCheckManifest() loads the measured side from a dee.run.v1..v6
 * manifest document and checks it against freshly computed static
 * bounds (bounds.hh) for the same (workload, scale, seed):
 *
 *  - every perf scope's mean cycles per run must be at least the
 *    workload's critical-path lower bound;
 *  - the Oracle's measured IPC must not exceed the dataflow limit
 *    (instructions / critical-path lower bound);
 *  - measured per-branch mispredict rates of provably-monotone loop
 *    tests must sit inside the predicted band (2-bit predictor runs
 *    only: skipped when the config carries a "predictor" override);
 *  - spec-tree cumulative probabilities (prof.* cp_mean) must respect
 *    the 0.995 characteristic-accuracy ceiling;
 *  - DEE residency: single-path models must report zero DEE slot
 *    cycles, and eager/DEE models at most E_T_max per simulated cycle.
 *
 * Violations are the theory failing to bound the simulator — the exact
 * regression the paper's optimality claims cannot survive, so
 * dee_lint --xcheck turns them into a failing exit code for CI.
 */

#ifndef DEE_ANALYSIS_ABSINT_XCHECK_HH
#define DEE_ANALYSIS_ABSINT_XCHECK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace dee::analysis::absint
{

/** Outcome of cross-checking one manifest. */
struct XcheckResult
{
    /** One "FAIL static_bounds.<scope>.<check>: measured ... static
     *  ..." line per violated bound. */
    std::vector<std::string> failures;
    /** Scopes or sections that could not be checked (and why). */
    std::vector<std::string> notes;
    /** Bounds actually evaluated (observability: 0 means the manifest
     *  carried nothing checkable). */
    std::size_t checks = 0;

    bool ok() const { return failures.empty(); }

    /** FAIL lines, then notes, then a one-line summary. */
    std::string renderText() const;
};

/** Cross-checks a parsed manifest document against static bounds
 *  recomputed from its config's (scale, seed). */
XcheckResult crossCheckManifest(const obs::Json &doc);

} // namespace dee::analysis::absint

#endif // DEE_ANALYSIS_ABSINT_XCHECK_HH
