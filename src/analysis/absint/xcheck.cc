#include "analysis/absint/xcheck.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint/bounds.hh"
#include "cfg/cfg.hh"
#include "workloads/workloads.hh"

namespace dee::analysis::absint
{

namespace
{

using obs::Json;

/* The model taxonomy. dee_analysis deliberately does not link the
 * simulator library, so the names are restated here; test_absint
 * cross-checks this list against core/sim's modelName() so the two can
 * never drift silently. */
bool
isSinglePathModel(const std::string &m)
{
    return m == "SP" || m == "SP-CD" || m == "SP-CD-MF";
}

bool
isEagerModel(const std::string &m)
{
    return m == "EE" || m == "DEE" || m == "DEE-CD" ||
           m == "DEE-CD-MF";
}

bool
isKnownModel(const std::string &m)
{
    return isSinglePathModel(m) || isEagerModel(m) || m == "Oracle" ||
           m == "Levo";
}

/** Numeric member lookup; false when absent or non-numeric. */
bool
numberField(const Json &node, const std::string &key, double *out)
{
    const Json *v = node.find(key);
    if (v == nullptr || !v->isNumber())
        return false;
    *out = v->asDouble();
    return true;
}

/** Reads a config value that the Session stores as a CLI string but a
 *  hand-built manifest may carry as a number. */
bool
configInt(const Json *config, const std::string &key,
          std::int64_t *out)
{
    if (config == nullptr || !config->isObject())
        return false;
    const Json *v = config->find(key);
    if (v == nullptr)
        return false;
    if (v->isNumber()) {
        *out = static_cast<std::int64_t>(v->asDouble());
        return true;
    }
    if (v->kind() != Json::Kind::String)
        return false;
    const std::string &s = v->asString();
    if (s.empty())
        return false;
    char *end = nullptr;
    const long long parsed = std::strtoll(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    *out = parsed;
    return true;
}

std::vector<std::string>
splitDots(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = s.find('.', start);
        if (dot == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, dot - start));
        start = dot + 1;
    }
}

std::string
fmtNum(double v)
{
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

/** Shared context for one crossCheckManifest() call. */
struct Checker
{
    XcheckResult res;
    std::set<std::string> workloadNames;
    std::map<std::pair<std::string, int>, StaticBounds> cache;
    std::int64_t scale = 1;
    std::int64_t seed = 0;
    std::string cfgWorkload;
    bool bandEligible = true;
    /** perf scope path -> (runs, sim_cycles); feeds the residency
     *  checks, which need cycles the profile section does not carry. */
    std::map<std::string, std::pair<double, double>> perfScopes;

    const StaticBounds &boundsFor(const std::string &wl)
    {
        const auto key = std::make_pair(wl, static_cast<int>(scale));
        auto it = cache.find(key);
        if (it == cache.end()) {
            const Program program =
                makeWorkload(workloadByName(wl),
                             static_cast<int>(scale),
                             static_cast<std::uint64_t>(seed));
            const Cfg cfg(program);
            it = cache
                     .emplace(key,
                              analyzeProgram(program, cfg).bounds)
                     .first;
        }
        return it->second;
    }

    void fail(const std::string &wl, const std::string &model,
              const std::string &check, const std::string &detail,
              const std::string &scope)
    {
        res.failures.push_back("FAIL static_bounds." + wl + "." +
                               model + "." + check + ": " + detail +
                               " (scope " + scope + ")");
    }

    void note(const std::string &text) { res.notes.push_back(text); }

    /** Maps a scope to its workload, or empty + a note. */
    std::string workloadOf(const std::string &scope,
                           const std::string &hint)
    {
        if (!hint.empty() && workloadNames.count(hint) != 0)
            return hint;
        const std::string head = scope.substr(0, scope.find('.'));
        if (workloadNames.count(head) != 0)
            return head;
        if (workloadNames.count(cfgWorkload) != 0)
            return cfgWorkload;
        note("scope '" + scope +
             "' not mapped to a workload; skipped");
        return std::string();
    }
};

/** Checks one perf scope (an object with a numeric "runs"). */
void
checkPerfScope(Checker &ck, const std::string &path, const Json &node)
{
    double runs = 0.0;
    double cycles = 0.0;
    double instrs = 0.0;
    numberField(node, "runs", &runs);
    const bool have_cycles = numberField(node, "sim_cycles", &cycles);
    numberField(node, "sim_instructions", &instrs);
    ck.perfScopes[path] = {runs, cycles};
    if (runs <= 0.0 || !have_cycles)
        return;

    const std::vector<std::string> tokens = splitDots(path);
    const std::string model = tokens.back();
    if (!isKnownModel(model)) {
        ck.note("perf scope '" + path +
                "' has no recognized model suffix; skipped");
        return;
    }
    const std::string wl = ck.workloadOf(path, std::string());
    if (wl.empty())
        return;
    const StaticBounds &bounds = ck.boundsFor(wl);
    const double cp = static_cast<double>(bounds.cpLowerBound);

    // (a) No model — Oracle and Levo included — can finish a run in
    // fewer cycles than the serial counter chains demand.
    const double mean_cycles = cycles / runs;
    ++ck.res.checks;
    if (mean_cycles + 0.5 < cp) {
        ck.fail(wl, model, "cycles_vs_cp_lower",
                "measured mean cycles " + fmtNum(mean_cycles) +
                    " < static critical-path lower bound " +
                    fmtNum(cp),
                path);
    }

    // (b) The Oracle's IPC is the dataflow limit; the static bound says
    // it cannot exceed instructions-per-run over the critical path.
    if (model == "Oracle" && cycles > 0.0 && instrs > 0.0) {
        const double ipc = instrs / cycles;
        const double limit = (instrs / runs) / cp;
        ++ck.res.checks;
        if (ipc > limit + 1e-9) {
            ck.fail(wl, model, "oracle_ipc_vs_dataflow_limit",
                    "measured IPC " + fmtNum(ipc) +
                        " > static dataflow limit " + fmtNum(limit),
                    path);
        }
    }
}

/** Walks host_perf.scopes, treating any object that carries a numeric
 *  "runs" as one metered scope. */
void
walkPerfScopes(Checker &ck, const std::string &prefix, const Json &node)
{
    for (const auto &[name, child] : node.members()) {
        if (!child.isObject())
            continue;
        const std::string path =
            prefix.empty() ? name : prefix + "." + name;
        const Json *runs = child.find("runs");
        if (runs != nullptr && runs->isNumber())
            checkPerfScope(ck, path, child);
        else
            walkPerfScopes(ck, path, child);
    }
}

/** Checks one profile scope: mispredict bands, cp ceiling, residency. */
void
checkProfileScope(Checker &ck, const std::string &scopeName,
                  const Json &p, double et_max)
{
    std::string hint;
    std::string model;
    if (const Json *w = p.find("workload");
        w != nullptr && w->kind() == Json::Kind::String)
        hint = w->asString();
    if (const Json *m = p.find("model");
        m != nullptr && m->kind() == Json::Kind::String)
        model = m->asString();
    if (model.empty())
        model = splitDots(scopeName).back();
    if (!isKnownModel(model)) {
        ck.note("profile scope '" + scopeName +
                "' has no recognized model; skipped");
        return;
    }
    const std::string wl = ck.workloadOf(scopeName, hint);
    if (wl.empty())
        return;
    const StaticBounds &bounds = ck.boundsFor(wl);

    std::map<std::uint64_t, const BranchBound *> by_sid;
    for (const BranchBound &b : bounds.branches)
        by_sid[b.sid] = &b;

    // Levo carries its own confidence/prediction machinery, so only
    // the sanity check applies to its branch rows.
    const bool stock_predictor = ck.bandEligible && model != "Levo";

    if (const Json *branches = p.find("branches");
        branches != nullptr && branches->isObject()) {
        for (const auto &[pcKey, b] : branches->members()) {
            if (!b.isObject())
                continue;
            double pc = 0.0;
            if (!numberField(b, "pc", &pc))
                continue;
            double exec = 0.0;
            double misp = 0.0;
            const bool have_exec =
                numberField(b, "executions", &exec);
            const bool have_misp =
                numberField(b, "mispredicts", &misp);

            // Universal sanity: a site cannot mispredict more often
            // than it executes.
            if (have_exec && have_misp) {
                ++ck.res.checks;
                if (misp > exec) {
                    ck.fail(wl, model,
                            "branch_" + pcKey + ".mispredict_sanity",
                            "measured mispredicts " + fmtNum(misp) +
                                " > executions " + fmtNum(exec),
                            scopeName);
                }
            }

            // (c) Provably-monotone loop tests under the stock 2-bit
            // predictor must stay inside the predicted band.
            const auto it =
                by_sid.find(static_cast<std::uint64_t>(pc));
            const BranchBound *bb =
                it == by_sid.end() ? nullptr : it->second;
            if (stock_predictor && bb != nullptr && bb->banded &&
                have_exec && have_misp && exec >= 16.0) {
                const double rate = misp / exec;
                ++ck.res.checks;
                if (rate > bb->mispredictHi + 1e-9) {
                    ck.fail(wl, model,
                            "branch_" + pcKey + ".mispredict_band",
                            "measured mispredict rate " +
                                fmtNum(rate) +
                                " > static band " +
                                fmtNum(bb->mispredictHi),
                            scopeName);
                }
            }

            // (d) Theorem 1: cp = p^depth with p clamped to 0.995, so
            // no assignment population can average above the ceiling.
            double cp_mean = 0.0;
            double assignments = 0.0;
            if (model != "Levo" &&
                numberField(b, "cp_mean", &cp_mean) &&
                numberField(b, "assignments", &assignments) &&
                assignments > 0.0) {
                ++ck.res.checks;
                if (cp_mean > bounds.specCpMax + 1e-6) {
                    ck.fail(wl, model,
                            "branch_" + pcKey + ".spec_cp_bound",
                            "measured cp_mean " + fmtNum(cp_mean) +
                                " > static cumulative-probability "
                                "bound " +
                                fmtNum(bounds.specCpMax),
                            scopeName);
                }
            }
        }
    }

    // (e) DEE residency. Single-path models own no DEE slots at all;
    // eager models own at most E_T_max slot-cycles per simulated cycle.
    double dee_slot = 0.0;
    if (!numberField(p, "dee_slot_cycles", &dee_slot))
        return;
    if (isSinglePathModel(model)) {
        ++ck.res.checks;
        if (dee_slot != 0.0) {
            ck.fail(wl, model, "dee_residency",
                    "measured dee_slot_cycles " + fmtNum(dee_slot) +
                        " > static single-path bound 0",
                    scopeName);
        }
    } else if (isEagerModel(model) && et_max > 0.0) {
        const auto it = ck.perfScopes.find(scopeName);
        if (it == ck.perfScopes.end() || it->second.second <= 0.0) {
            ck.note("profile scope '" + scopeName +
                    "' has no matching perf scope; residency bound "
                    "skipped");
            return;
        }
        const double bound = et_max * it->second.second;
        ++ck.res.checks;
        if (dee_slot > bound + 0.5) {
            ck.fail(wl, model, "dee_residency",
                    "measured dee_slot_cycles " + fmtNum(dee_slot) +
                        " > static bound E_T_max*cycles " +
                        fmtNum(bound),
                    scopeName);
        }
    }
}

/** Largest numeric element of any "ets" array found under results. */
double
findEtMax(const Json *results)
{
    if (results == nullptr)
        return 0.0;
    double best = 0.0;
    if (results->isObject()) {
        for (const auto &[name, child] : results->members()) {
            if (name == "ets" && child.isArray()) {
                for (const Json &v : child.items())
                    if (v.isNumber() && v.asDouble() > best)
                        best = v.asDouble();
            } else {
                best = std::max(best, findEtMax(&child));
            }
        }
    } else if (results->isArray()) {
        for (const Json &v : results->items())
            best = std::max(best, findEtMax(&v));
    }
    return best;
}

} // namespace

std::string
XcheckResult::renderText() const
{
    std::ostringstream oss;
    for (const std::string &f : failures)
        oss << f << "\n";
    for (const std::string &n : notes)
        oss << "note: " << n << "\n";
    oss << "xcheck: " << checks << " bound(s) checked, "
        << failures.size() << " failure(s), " << notes.size()
        << " note(s)\n";
    return oss.str();
}

XcheckResult
crossCheckManifest(const obs::Json &doc)
{
    Checker ck;
    for (const WorkloadId id : allWorkloads())
        ck.workloadNames.insert(workloadName(id));

    const Json *config = doc.find("config");
    if (!configInt(config, "scale", &ck.scale) || ck.scale < 1)
        ck.scale = 1;
    if (!configInt(config, "seed", &ck.seed) || ck.seed < 0)
        ck.seed = 0;
    if (config != nullptr && config->isObject()) {
        if (const Json *w = config->find("workload");
            w != nullptr && w->kind() == Json::Kind::String)
            ck.cfgWorkload = w->asString();
        if (config->find("predictor") != nullptr) {
            ck.bandEligible = false;
            ck.note("config overrides the predictor; mispredict-band "
                    "checks skipped");
        }
    }
    const Json *results = doc.find("results");
    if (results != nullptr && results->isObject() &&
        results->find("predictors") != nullptr && ck.bandEligible) {
        ck.bandEligible = false;
        ck.note("run swept predictors; mispredict-band checks "
                "skipped");
    }

    // Perf scopes first: checks (a)/(b), plus the cycle totals the
    // residency bound (e) needs.
    const Json *host_perf = doc.find("host_perf");
    const Json *scopes =
        host_perf != nullptr ? host_perf->find("scopes") : nullptr;
    if (scopes != nullptr && scopes->isObject())
        walkPerfScopes(ck, std::string(), *scopes);

    const double et_max = findEtMax(results);
    const Json *profile = doc.find("profile");
    if (profile != nullptr && profile->isObject()) {
        for (const auto &[scopeName, p] : profile->members()) {
            if (p.isObject())
                checkProfileScope(ck, scopeName, p, et_max);
        }
    }

    if (ck.res.checks == 0)
        ck.note("manifest carried no checkable perf/profile scopes");
    return ck.res;
}

} // namespace dee::analysis::absint
