/**
 * @file
 * Static bounds derived from the abstract-interpretation fixpoints.
 *
 * analyzeProgram() runs the interval solver plus the derived analyses
 * (absint.hh) and condenses them into one StaticBounds record per
 * program — the static side of the paper's optimality argument:
 *
 *  - cpLowerBound: a critical-path *lower* bound on the cycles of any
 *    completed execution, from the serial counter chains of the
 *    mandatory counted loops. No model — the dataflow Oracle included —
 *    can finish in fewer cycles, so measured mean cycles below it mean
 *    the simulator and the theory disagree.
 *  - per-branch predictability classes with a mispredict-rate band for
 *    the provably-monotone loop tests (a 2-bit counter mispredicts at
 *    most ~3 times per loop entry on a monotone branch).
 *  - specCpMax: the cumulative-probability ceiling any spec-tree
 *    assignment can carry (models.cc clamps characteristic accuracy to
 *    0.995, and Theorem 1's cp = p^depth can never exceed p).
 *  - value-locality and memory-dependence summaries (ROADMAP item 4's
 *    inputs).
 *
 * staticBoundsSection() packages the bounds for every workload of a
 * run into the manifest's "static_bounds" section (since schema dee.run.v6);
 * publishStaticBounds() additionally publishes bounds.* registry
 * scalars and feeds lint.* counters so every grid tool's manifest
 * carries the summary, not just dee_lint.
 */

#ifndef DEE_ANALYSIS_ABSINT_BOUNDS_HH
#define DEE_ANALYSIS_ABSINT_BOUNDS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/absint/absint.hh"
#include "analysis/findings.hh"
#include "obs/json.hh"
#include "workloads/workloads.hh"

namespace dee::analysis::absint
{

/** Static predictability class of one conditional branch. */
enum class BranchClass : std::uint8_t
{
    Monotone,      ///< counted-loop test: same way minTrip-1 times
    StridePattern, ///< reads an enclosing counted loop's counter
    DataDependent, ///< everything else
};

const char *branchClassName(BranchClass cls);

/** Bound record for one static conditional branch. */
struct BranchBound
{
    StaticId sid = 0;
    BlockId block = 0;
    BranchClass cls = BranchClass::DataDependent;
    /** True when mispredictHi is a checkable bound: the branch is the
     *  *single* counter/limit test of a counted loop with a proven
     *  minimum trip count (a 2-bit counter then mispredicts at most
     *  ~3 times per entry over >= minTrip executions). */
    bool banded = false;
    /** Upper bound on the 2-bit-counter mispredict rate (1 = none). */
    double mispredictHi = 1.0;
    /** The owning counted loop's proven minimum trip count. */
    std::int64_t minTrip = 0;
};

/** Bound record for one natural loop. */
struct LoopBound
{
    BlockId header = 0;
    int depth = 1;
    bool counted = false;
    bool mandatory = false;
    RegId counter = kNoReg;
    std::int64_t minTrip = 0;
    std::int64_t maxTrip = -1;
    std::uint64_t bodyInstrs = 0;
    /** Instructions retirable per serial counter step: the loop's
     *  dataflow ILP can never exceed its body size, because the
     *  counter increment chain forces one cycle per iteration. */
    double ilpBound = 0.0;
    MemDepKind memDep = MemDepKind::Unknown;
    std::int64_t memDepDistance = 0;
};

/** Whole-program static bounds. */
struct StaticBounds
{
    std::uint64_t blocks = 0;
    std::uint64_t instrs = 0;
    /** Cycles every completed run needs, at any speculation model. */
    std::int64_t cpLowerBound = 1;
    /** Widest per-block dependence-DAG ILP (dependence.hh). */
    double maxBlockIlp = 0.0;
    /** Program ILP bound with per-block critical paths serialized. */
    double serializedIlpBound = 0.0;
    /** Ceiling on any spec-tree assignment's cumulative probability. */
    double specCpMax = 0.995;
    /** False when the interval solver hit its iteration cap. */
    bool converged = true;
    LocalitySummary locality;
    std::vector<LoopBound> loops;
    std::vector<BranchBound> branches;

    obs::Json toJson() const;
};

/** analyzeProgram()'s full output: the bounds plus any findings the
 *  fixpoint surfaced (div-by-zero, dead branch arms, unknown loop
 *  bounds, non-convergence). */
struct AbsintResult
{
    StaticBounds bounds;
    std::vector<Finding> findings;
};

/** Runs the solver and every derived analysis on a structurally sound
 *  program (callers verify first, as lintProgram() does). */
AbsintResult analyzeProgram(const Program &program, const Cfg &cfg);

/**
 * The manifest "static_bounds" section for one run: schema tag,
 * generation parameters, lint severity counts, and per-workload
 * StaticBounds for every id in @p ids.
 */
obs::Json staticBoundsSection(const std::vector<WorkloadId> &ids,
                              int scale, std::uint64_t seed);

/**
 * Computes staticBoundsSection(), installs it as the process manifest
 * section (obs::setStaticBoundsSection) and publishes bounds.<wl>.*
 * registry scalars + lint.* counters. Serial, deterministic; grid
 * tools call it once after building their suite.
 */
void publishStaticBounds(const std::vector<WorkloadId> &ids, int scale,
                         std::uint64_t seed);

} // namespace dee::analysis::absint

#endif // DEE_ANALYSIS_ABSINT_BOUNDS_HH
