/**
 * @file
 * Lattice domains for the abstract-interpretation pass.
 *
 * The base domain is the classic integer interval lattice over the
 * machine's int64 values, with two sentinels marking "unbounded":
 * kNegInf / kPosInf. Because the interpreter's ALU (exec/interp.cc)
 * computes Add/Sub/Mul with *wrapping* two's-complement semantics, the
 * transfer functions here return an exact interval only when every
 * endpoint combination provably fits in int64; any possible overflow
 * degrades to top. That keeps the domain sound against the real
 * machine rather than against idealized integers.
 *
 * Constants are the singleton intervals, so no separate constant
 * lattice is needed: Interval::isConst() is the constant domain.
 */

#ifndef DEE_ANALYSIS_ABSINT_DOMAIN_HH
#define DEE_ANALYSIS_ABSINT_DOMAIN_HH

#include <algorithm>
#include <cstdint>
#include <limits>

namespace dee::analysis::absint
{

/** "Unbounded below" endpoint sentinel. */
constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min();
/** "Unbounded above" endpoint sentinel. */
constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max();

/** True when @p v is one of the unbounded sentinels. */
inline bool
isInf(std::int64_t v)
{
    return v == kNegInf || v == kPosInf;
}

/**
 * Exact endpoint sum: false when either side is unbounded or the sum
 * overflows int64 (callers degrade to top — the interpreter wraps).
 */
inline bool
exactAdd(std::int64_t a, std::int64_t b, std::int64_t *out)
{
    if (isInf(a) || isInf(b))
        return false;
    return !__builtin_add_overflow(a, b, out);
}

/** Exact endpoint difference; same contract as exactAdd(). */
inline bool
exactSub(std::int64_t a, std::int64_t b, std::int64_t *out)
{
    if (isInf(a) || isInf(b))
        return false;
    return !__builtin_sub_overflow(a, b, out);
}

/** Exact endpoint product; same contract as exactAdd(). */
inline bool
exactMul(std::int64_t a, std::int64_t b, std::int64_t *out)
{
    if (isInf(a) || isInf(b))
        return false;
    return !__builtin_mul_overflow(a, b, out);
}

/**
 * One element of the interval lattice: bottom (no value), or the set
 * of int64 values in [lo, hi] with sentinel endpoints for unbounded
 * sides. Top is [kNegInf, kPosInf] — every representable value.
 */
struct Interval
{
    std::int64_t lo = kNegInf;
    std::int64_t hi = kPosInf;
    bool bot = false;

    static Interval top() { return Interval{}; }
    static Interval bottom() { return Interval{0, 0, true}; }
    static Interval val(std::int64_t v) { return Interval{v, v, false}; }

    /** [lo, hi]; an inverted pair collapses to bottom. */
    static Interval
    range(std::int64_t l, std::int64_t h)
    {
        if (l > h)
            return bottom();
        return Interval{l, h, false};
    }

    bool isBottom() const { return bot; }
    bool isTop() const { return !bot && lo == kNegInf && hi == kPosInf; }
    bool isConst() const { return !bot && lo == hi; }
    std::int64_t constant() const { return lo; }
    bool boundedBelow() const { return !bot && lo != kNegInf; }
    bool boundedAbove() const { return !bot && hi != kPosInf; }

    bool
    contains(std::int64_t v) const
    {
        return !bot && lo <= v && v <= hi;
    }

    bool containsZero() const { return contains(0); }

    bool
    operator==(const Interval &o) const
    {
        if (bot || o.bot)
            return bot == o.bot;
        return lo == o.lo && hi == o.hi;
    }
};

/** Least upper bound. */
inline Interval
join(const Interval &a, const Interval &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    return Interval::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

/** Greatest lower bound (may be bottom). */
inline Interval
meet(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    return Interval::range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
}

/**
 * Standard interval widening: any endpoint that moved since @p prev
 * jumps straight to its sentinel, so every chain of widened joins
 * stabilizes after at most two steps per register.
 */
inline Interval
widen(const Interval &prev, const Interval &next)
{
    if (prev.isBottom())
        return next;
    if (next.isBottom())
        return prev;
    Interval w;
    w.lo = next.lo < prev.lo ? kNegInf : prev.lo;
    w.hi = next.hi > prev.hi ? kPosInf : prev.hi;
    w.bot = false;
    return w;
}

/** Abstract wrapping addition (exact or top, see file comment). */
inline Interval
iAdd(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!exactAdd(a.lo, b.lo, &lo) || !exactAdd(a.hi, b.hi, &hi))
        return Interval::top();
    return Interval::range(lo, hi);
}

/** Abstract wrapping subtraction. */
inline Interval
iSub(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!exactSub(a.lo, b.hi, &lo) || !exactSub(a.hi, b.lo, &hi))
        return Interval::top();
    return Interval::range(lo, hi);
}

/** Abstract wrapping multiplication (min/max of endpoint products). */
inline Interval
iMul(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    std::int64_t p[4];
    if (!exactMul(a.lo, b.lo, &p[0]) || !exactMul(a.lo, b.hi, &p[1]) ||
        !exactMul(a.hi, b.lo, &p[2]) || !exactMul(a.hi, b.hi, &p[3]))
        return Interval::top();
    return Interval::range(*std::min_element(p, p + 4),
                           *std::max_element(p, p + 4));
}

/** Abstract division; the machine defines x/0 == 0 (interp.cc). */
inline Interval
iDiv(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    // Only the easy sound case: constant nonzero divisor, bounded
    // dividend. Truncating division is monotone in the dividend for a
    // fixed divisor, so the endpoint quotients bound the result.
    if (b.isConst() && b.constant() != 0 && a.boundedBelow() &&
        a.boundedAbove() && !(b.constant() == -1 && a.lo == kNegInf)) {
        const std::int64_t q1 = a.lo / b.constant();
        const std::int64_t q2 = a.hi / b.constant();
        Interval r = Interval::range(std::min(q1, q2), std::max(q1, q2));
        if (b.containsZero())
            r = join(r, Interval::val(0));
        return r;
    }
    return Interval::top();
}

/** Abstract And with a known-nonnegative side: bits are a subset of
 *  that side's bits, so the result lies in [0, side.hi]. */
inline Interval
iAnd(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    std::int64_t hi = kPosInf;
    if (a.lo >= 0 && a.boundedAbove())
        hi = std::min(hi, a.hi);
    if (b.lo >= 0 && b.boundedAbove())
        hi = std::min(hi, b.hi);
    if (hi == kPosInf)
        return Interval::top();
    return Interval::range(0, hi);
}

/** Abstract Or/Xor: for nonnegative operands, a|b <= a+b and
 *  a^b <= a+b, and Or is at least each operand. */
inline Interval
iOrXor(const Interval &a, const Interval &b, bool is_or)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    if (a.lo < 0 || b.lo < 0)
        return Interval::top();
    std::int64_t hi = 0;
    if (!exactAdd(a.hi, b.hi, &hi))
        return Interval::top();
    const std::int64_t lo = is_or ? std::max(a.lo, b.lo) : 0;
    return Interval::range(lo, hi);
}

/** Abstract Slt/SltI result, refined when the comparison is decided. */
inline Interval
iSlt(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    if (!isInf(a.hi) && !isInf(b.lo) && a.hi < b.lo)
        return Interval::val(1);
    if (!isInf(a.lo) && !isInf(b.hi) && a.lo >= b.hi)
        return Interval::val(0);
    return Interval::range(0, 1);
}

/** Abstract left shift (the machine masks the amount to 6 bits and
 *  shifts the unsigned pattern; only nonnegative exact cases stay
 *  precise). */
inline Interval
iShl(const Interval &a, const Interval &s)
{
    if (a.isBottom() || s.isBottom())
        return Interval::bottom();
    if (!s.isConst() || a.lo < 0 || !a.boundedAbove())
        return Interval::top();
    const std::int64_t amount = s.constant() & 63;
    std::int64_t scale = 1;
    if (!exactMul(std::int64_t{1} << std::min<std::int64_t>(amount, 62),
                  amount > 62 ? 2 : 1, &scale))
        return Interval::top();
    return iMul(a, Interval::val(scale));
}

/** Abstract logical right shift; precise for nonnegative values. */
inline Interval
iShr(const Interval &a, const Interval &s)
{
    if (a.isBottom() || s.isBottom())
        return Interval::bottom();
    if (!s.isConst() || a.lo < 0 || !a.boundedAbove())
        return Interval::top();
    const std::int64_t amount = s.constant() & 63;
    return Interval::range(a.lo >> amount, a.hi >> amount);
}

} // namespace dee::analysis::absint

#endif // DEE_ANALYSIS_ABSINT_DOMAIN_HH
