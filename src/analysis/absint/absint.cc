#include "analysis/absint/absint.hh"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

namespace dee::analysis::absint
{

namespace
{

/** r0 always reads zero, whatever the state says; absent operands
 *  (kNoReg, e.g. LoadImm's rs1) read top — the value is never used,
 *  but indexing regs[] with it would be out of bounds. */
Interval
regOf(const RegState &s, RegId r)
{
    if (r == kZeroReg)
        return Interval::val(0);
    if (r >= kNumRegs)
        return Interval::top();
    return s.regs[r];
}

/** The comparison a branch decides, normalized per edge outcome. */
enum class Rel : std::uint8_t
{
    Lt, ///< rs1 <  rs2 on this edge
    Ge, ///< rs1 >= rs2 on this edge
    Eq, ///< rs1 == rs2 on this edge
    Ne, ///< rs1 != rs2 on this edge
};

bool
effectiveRel(Opcode op, bool taken, Rel *out)
{
    switch (op) {
      case Opcode::BranchLt: *out = taken ? Rel::Lt : Rel::Ge; return true;
      case Opcode::BranchGe: *out = taken ? Rel::Ge : Rel::Lt; return true;
      case Opcode::BranchEq: *out = taken ? Rel::Eq : Rel::Ne; return true;
      case Opcode::BranchNe: *out = taken ? Rel::Ne : Rel::Eq; return true;
      default: return false;
    }
}

/** Narrows @p s with "reg a REL reg b"; infeasible meets mark the
 *  state unreachable (the edge cannot be taken). */
void
refineRel(RegState *s, Rel rel, RegId a, RegId b)
{
    Interval va = regOf(*s, a);
    Interval vb = regOf(*s, b);
    std::int64_t t = 0;
    switch (rel) {
      case Rel::Lt:
        if (exactSub(vb.hi, 1, &t))
            va = meet(va, Interval::range(kNegInf, t));
        if (exactAdd(regOf(*s, a).lo, 1, &t))
            vb = meet(vb, Interval::range(t, kPosInf));
        break;
      case Rel::Ge:
        va = meet(va, Interval::range(vb.lo, kPosInf));
        vb = meet(vb, Interval::range(kNegInf, regOf(*s, a).hi));
        break;
      case Rel::Eq: {
        const Interval m = meet(va, vb);
        va = m;
        vb = m;
        break;
      }
      case Rel::Ne:
        if (vb.isConst() && !va.isBottom()) {
            if (va.lo == vb.constant() && exactAdd(va.lo, 1, &t))
                va = meet(va, Interval::range(t, kPosInf));
            else if (va.hi == vb.constant() && exactSub(va.hi, 1, &t))
                va = meet(va, Interval::range(kNegInf, t));
        }
        if (va.isConst() && !vb.isBottom()) {
            if (vb.lo == va.constant() && exactAdd(vb.lo, 1, &t))
                vb = meet(vb, Interval::range(t, kPosInf));
            else if (vb.hi == va.constant() && exactSub(vb.hi, 1, &t))
                vb = meet(vb, Interval::range(kNegInf, t));
        }
        break;
    }
    if (va.isBottom() || vb.isBottom()) {
        s->reachable = false;
        return;
    }
    if (a < kNumRegs)
        s->regs[a] = va;
    if (b < kNumRegs)
        s->regs[b] = vb;
}

void
refineEdge(RegState *s, const Instruction &term, bool taken)
{
    Rel rel;
    if (!effectiveRel(term.op, taken, &rel))
        return;
    refineRel(s, rel, term.rs1, term.rs2);
}

/** Pushes @p state through every instruction of block @p b. */
RegState
transferBlock(const Program &program, BlockId b, RegState state)
{
    for (const Instruction &inst : program.block(b).instrs)
        applyInstr(inst, &state);
    return state;
}

/**
 * Calls fn(successor, edge_state) for every real-block out-edge of
 * @p b, with the terminator's refinement applied per edge. Unreachable
 * edge states (infeasible branch outcomes) are still reported; callers
 * skip them via RegState::reachable.
 */
template <typename Fn>
void
forEachOutEdge(const Program &program, const Cfg &cfg, BlockId b,
               const RegState &in, Fn &&fn)
{
    if (!in.reachable)
        return;
    const RegState out = transferBlock(program, b, in);
    if (!out.reachable)
        return;
    const std::size_t num_blocks = cfg.numBlocks();
    const BasicBlock &bb = program.block(b);
    const Instruction *term =
        bb.instrs.empty() ? nullptr : &bb.instrs.back();

    if (term != nullptr && isCondBranch(term->op)) {
        const BlockId t = term->target;
        const BlockId f = b + 1;
        RegState taken = out;
        refineEdge(&taken, *term, true);
        RegState fall = out;
        refineEdge(&fall, *term, false);
        if (t == f) {
            taken.join(fall);
            fn(t, taken);
            return;
        }
        fn(t, taken);
        if (f < num_blocks)
            fn(f, fall);
        return;
    }
    if (term != nullptr && term->op == Opcode::Jump) {
        fn(term->target, out);
        return;
    }
    if (term != nullptr && term->op == Opcode::Halt)
        return;
    if (b + 1 < num_blocks)
        fn(static_cast<BlockId>(b + 1), out);
}

/** Reverse postorder over the forward CFG (unreachable blocks last). */
std::vector<BlockId>
reversePostorder(const Cfg &cfg)
{
    const std::size_t n = cfg.numBlocks();
    std::vector<bool> seen(n, false);
    std::vector<BlockId> post;
    post.reserve(n);
    // Iterative DFS with an explicit (block, next-successor) stack.
    std::vector<std::pair<BlockId, std::size_t>> stack;
    if (n > 0) {
        stack.push_back({0, 0});
        seen[0] = true;
    }
    while (!stack.empty()) {
        auto &[b, i] = stack.back();
        const auto &succs = cfg.successors(b);
        bool descended = false;
        while (i < succs.size()) {
            const BlockId s = succs[i++];
            if (s >= n || seen[s])
                continue;
            seen[s] = true;
            stack.push_back({s, 0});
            descended = true;
            break;
        }
        if (!descended && !stack.empty() && stack.back().first == b &&
            i >= succs.size()) {
            post.push_back(b);
            stack.pop_back();
        }
    }
    std::vector<BlockId> order(post.rbegin(), post.rend());
    for (BlockId b = 0; b < n; ++b) {
        if (!seen[b])
            order.push_back(b);
    }
    return order;
}

RegState
widenState(const RegState &prev, const RegState &next)
{
    if (!prev.reachable)
        return next;
    RegState w = prev;
    for (RegId r = 0; r < kNumRegs; ++r)
        w.regs[r] = widen(prev.regs[r], next.regs[r]);
    return w;
}

} // namespace

void
RegState::join(const RegState &other)
{
    if (!other.reachable)
        return;
    if (!reachable) {
        *this = other;
        return;
    }
    for (RegId r = 0; r < kNumRegs; ++r)
        regs[r] = absint::join(regs[r], other.regs[r]);
}

bool
RegState::operator==(const RegState &other) const
{
    if (reachable != other.reachable)
        return false;
    if (!reachable)
        return true;
    return regs == other.regs;
}

void
applyInstr(const Instruction &inst, RegState *state)
{
    const RegId rd = inst.dest();
    if (rd == kNoReg)
        return;
    Interval v;
    // Mirror the interpreter's operand selection (exec/interp.cc): a
    // present rs2 means the register form, else the immediate form.
    const Interval a = regOf(*state, inst.rs1);
    const Interval b = inst.rs2 != kNoReg ? regOf(*state, inst.rs2)
                                          : Interval::val(inst.imm);
    switch (inst.op) {
      case Opcode::LoadImm: v = Interval::val(inst.imm); break;
      case Opcode::Add:
      case Opcode::AddI: v = iAdd(a, b); break;
      case Opcode::Sub: v = iSub(a, b); break;
      case Opcode::Mul: v = iMul(a, b); break;
      case Opcode::Div: v = iDiv(a, b); break;
      case Opcode::And:
      case Opcode::AndI: v = iAnd(a, b); break;
      case Opcode::Or:
      case Opcode::OrI: v = iOrXor(a, b, true); break;
      case Opcode::Xor:
      case Opcode::XorI: v = iOrXor(a, b, false); break;
      case Opcode::Sll:
      case Opcode::ShlI: v = iShl(a, b); break;
      case Opcode::Srl:
      case Opcode::ShrI: v = iShr(a, b); break;
      case Opcode::Slt:
      case Opcode::SltI: v = iSlt(a, b); break;
      case Opcode::Load: v = Interval::top(); break;
      default: v = Interval::top(); break;
    }
    if (rd != kZeroReg)
        state->regs[rd] = v;
}

IntervalResult
solveIntervals(const Program &program, const Cfg &cfg,
               const LoopForest &loops)
{
    const std::size_t n = cfg.numBlocks();
    IntervalResult result;
    result.in.assign(n, RegState{});
    if (n == 0)
        return result;

    RegState entry;
    entry.reachable = true;
    entry.regs.fill(Interval::top());
    entry.regs[kZeroReg] = Interval::val(0);
    result.in[0] = entry;

    std::vector<bool> is_header(n, false);
    for (const NaturalLoop &loop : loops.loops())
        is_header[loop.header] = true;

    const std::vector<BlockId> order = reversePostorder(cfg);
    std::vector<std::size_t> rpo_index(n, 0);
    for (std::size_t i = 0; i < order.size(); ++i)
        rpo_index[order[i]] = i;

    // Worklist keyed by RPO position so loop bodies settle before
    // their headers re-fire.
    std::set<std::pair<std::size_t, BlockId>> worklist;
    std::vector<std::uint32_t> updates(n, 0);
    worklist.insert({rpo_index[0], 0});

    constexpr std::uint32_t kWidenDelay = 2;
    const std::uint64_t cap = 512 * static_cast<std::uint64_t>(n + 1);

    while (!worklist.empty()) {
        const BlockId b = worklist.begin()->second;
        worklist.erase(worklist.begin());
        if (++result.visits > cap) {
            result.converged = false;
            break;
        }
        forEachOutEdge(program, cfg, b, result.in[b],
                       [&](BlockId s, const RegState &edge) {
                           if (!edge.reachable || s >= n)
                               return;
                           RegState merged = result.in[s];
                           merged.join(edge);
                           if (is_header[s] &&
                               updates[s] >= kWidenDelay)
                               merged =
                                   widenState(result.in[s], merged);
                           if (merged == result.in[s])
                               return;
                           result.in[s] = merged;
                           ++updates[s];
                           worklist.insert({rpo_index[s], s});
                       });
    }

    // Narrowing: bounded decreasing sweeps without widening. Each full
    // sweep applies the (monotone) system function to a state known to
    // be above the least fixpoint, so any fixed number of sweeps stays
    // sound while clawing back precision the widening threw away.
    constexpr int kNarrowPasses = 2;
    for (int pass = 0; pass < kNarrowPasses; ++pass) {
        std::vector<RegState> next(n, RegState{});
        next[0] = entry;
        for (const BlockId b : order) {
            forEachOutEdge(program, cfg, b, result.in[b],
                           [&](BlockId s, const RegState &edge) {
                               if (edge.reachable && s < n)
                                   next[s].join(edge);
                           });
        }
        result.in = std::move(next);
    }
    return result;
}

RegState
edgeState(const IntervalResult &fix, const Program &program,
          const Cfg &cfg, BlockId from, BlockId to)
{
    RegState result;
    forEachOutEdge(program, cfg, from, fix.in[from],
                   [&](BlockId s, const RegState &st) {
                       if (s == to && st.reachable)
                           result.join(st);
                   });
    return result;
}

// ---------------------------------------------------------------------
// Counted loops
// ---------------------------------------------------------------------

namespace
{

/** All in-loop def sites of @p reg, as (block, index) pairs. */
std::vector<std::pair<BlockId, std::size_t>>
defsInLoop(const Program &program, const NaturalLoop &loop, RegId reg)
{
    std::vector<std::pair<BlockId, std::size_t>> defs;
    for (const BlockId b : loop.blocks) {
        const auto &instrs = program.block(b).instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            if (instrs[i].dest() == reg)
                defs.push_back({b, i});
        }
    }
    return defs;
}

/** The relation a CFG edge (from -> to) implies, when its source
 *  terminator is a conditional branch that decides the edge. */
bool
edgeRelation(const Program &program, BlockId from, BlockId to,
             Rel *rel, RegId *r1, RegId *r2)
{
    const auto &instrs = program.block(from).instrs;
    if (instrs.empty())
        return false;
    const Instruction &term = instrs.back();
    if (!isCondBranch(term.op))
        return false;
    const BlockId taken = term.target;
    const BlockId fall = from + 1;
    if (taken == fall)
        return false; // both outcomes land here: nothing decided
    bool is_taken;
    if (to == taken)
        is_taken = true;
    else if (to == fall)
        is_taken = false;
    else
        return false;
    if (!effectiveRel(term.op, is_taken, rel))
        return false;
    *r1 = term.rs1;
    *r2 = term.rs2;
    return true;
}

/** True when the edge proves counter >= limit. */
bool
provesExit(Rel rel, RegId r1, RegId r2, RegId ctr, RegId lim)
{
    if (rel == Rel::Ge && r1 == ctr && r2 == lim)
        return true;
    if (rel == Rel::Lt && r1 == lim && r2 == ctr)
        return true; // lim < ctr is even stronger
    return false;
}

/** True when the edge proves counter < limit (strictly). */
bool
provesContinue(Rel rel, RegId r1, RegId r2, RegId ctr, RegId lim)
{
    return rel == Rel::Lt && r1 == ctr && r2 == lim;
}

/** ceil(a / b) for b > 0. */
std::int64_t
ceilDivPos(std::int64_t a, std::int64_t b)
{
    const std::int64_t q = a / b;
    return q * b < a ? q + 1 : q;
}

/** Tries every (counter, limit) candidate of one loop; returns the
 *  recognition with the strongest proven minimum trip count. */
bool
recognizeCountedLoop(const Program &program, const Cfg &cfg,
                     const IntervalResult &fix, const NaturalLoop &loop,
                     std::size_t loop_index, CountedLoop *out)
{
    const std::size_t n = cfg.numBlocks();

    // Exit edges (u in loop -> v outside). An edge into the virtual
    // exit node (halt) can never carry an exit proof.
    std::vector<std::pair<BlockId, BlockId>> exit_edges;
    bool halt_exit = false;
    for (const BlockId u : loop.blocks) {
        for (const BlockId v : cfg.successors(u)) {
            if (v >= n) {
                halt_exit = true;
                continue;
            }
            if (!loop.contains(v))
                exit_edges.push_back({u, v});
        }
    }
    if (halt_exit || exit_edges.empty())
        return false;

    // Candidate counters: registers whose every in-loop def is a
    // positive constant self-increment.
    std::vector<RegId> candidates;
    for (RegId reg = 1; reg < kNumRegs; ++reg) {
        const auto defs = defsInLoop(program, loop, reg);
        if (defs.empty())
            continue;
        bool ok = true;
        for (const auto &[b, i] : defs) {
            const Instruction &inst = program.block(b).instrs[i];
            if (inst.op != Opcode::AddI || inst.rs1 != reg ||
                inst.imm <= 0) {
                ok = false;
                break;
            }
        }
        if (ok)
            candidates.push_back(reg);
    }

    bool found = false;
    CountedLoop best;
    for (const RegId ctr : candidates) {
        std::int64_t min_step = kPosInf;
        std::int64_t max_step = 0;
        for (const auto &[b, i] : defsInLoop(program, loop, ctr)) {
            const std::int64_t step = program.block(b).instrs[i].imm;
            min_step = std::min(min_step, step);
            max_step = std::max(max_step, step);
        }

        // Every exit edge must prove ctr >= lim against one shared,
        // loop-invariant limit register.
        RegId lim = kNoReg;
        bool proven = true;
        for (const auto &[u, v] : exit_edges) {
            Rel rel;
            RegId r1, r2;
            if (!edgeRelation(program, u, v, &rel, &r1, &r2)) {
                proven = false;
                break;
            }
            const RegId other = r1 == ctr ? r2 : r1;
            if (!provesExit(rel, r1, r2, ctr, other) ||
                (lim != kNoReg && other != lim)) {
                proven = false;
                break;
            }
            lim = other;
        }
        if (!proven || lim == kNoReg || lim == ctr ||
            !defsInLoop(program, loop, lim).empty())
            continue;

        CountedLoop cl;
        cl.loopIndex = loop_index;
        cl.header = loop.header;
        cl.counter = ctr;
        cl.limit = lim;
        cl.minStep = min_step;
        cl.maxStep = max_step;
        cl.bodyInstrs = 0;
        for (const BlockId b : loop.blocks)
            cl.bodyInstrs += program.block(b).instrs.size();
        cl.mandatory = cfg.postdominates(loop.header, 0);

        // Counter/limit values joined over the loop-entry edges.
        cl.init = Interval::bottom();
        cl.limitAtEntry = Interval::bottom();
        bool any_entry = false;
        for (const BlockId p : cfg.predecessors(loop.header)) {
            if (p >= n || loop.contains(p))
                continue;
            const RegState st =
                edgeState(fix, program, cfg, p, loop.header);
            if (!st.reachable)
                continue;
            any_entry = true;
            cl.init = join(cl.init, regOf(st, ctr));
            cl.limitAtEntry = join(cl.limitAtEntry, regOf(st, lim));
        }
        if (loop.header == 0) {
            // The program entry itself enters this loop; its values
            // are unconstrained.
            cl.init = Interval::top();
            cl.limitAtEntry =
                lim == kZeroReg ? Interval::val(0) : Interval::top();
            any_entry = true;
        }
        if (!any_entry) {
            cl.init = Interval::top();
            cl.limitAtEntry = Interval::top();
        }

        // minTrip: the counter must advance from at most init.hi to at
        // least limit.lo, in steps of at most maxStep.
        std::int64_t d = 0;
        if (cl.init.boundedAbove() && cl.limitAtEntry.boundedBelow() &&
            exactSub(cl.limitAtEntry.lo, cl.init.hi, &d) && d > 0)
            cl.minTrip = ceilDivPos(d, max_step);

        // maxTrip needs a strict ctr < lim proof on every continue
        // path: either all back edges, or the header's in-loop edge
        // (the header dominates every iteration).
        bool continues_proven = !loop.latches.empty();
        for (const BlockId latch : loop.latches) {
            Rel rel;
            RegId r1, r2;
            if (!edgeRelation(program, latch, loop.header, &rel, &r1,
                              &r2) ||
                !provesContinue(rel, r1, r2, ctr, lim)) {
                continues_proven = false;
                break;
            }
        }
        if (!continues_proven) {
            for (const BlockId s : cfg.successors(loop.header)) {
                Rel rel;
                RegId r1, r2;
                if (s < n && loop.contains(s) &&
                    edgeRelation(program, loop.header, s, &rel, &r1,
                                 &r2) &&
                    provesContinue(rel, r1, r2, ctr, lim)) {
                    continues_proven = true;
                    break;
                }
            }
        }
        std::int64_t d2 = 0;
        if (continues_proven && cl.init.boundedBelow() &&
            cl.limitAtEntry.boundedAbove() &&
            exactSub(cl.limitAtEntry.hi, cl.init.lo, &d2)) {
            // Increments 1..K-1 each followed by a passed ctr < lim
            // test; one generous extra step of slack keeps this a safe
            // upper bound for every test placement.
            cl.maxTrip = d2 <= 0 ? 1 : (d2 - 1) / min_step + 2;
        }

        for (const BlockId b : loop.blocks) {
            const auto &instrs = program.block(b).instrs;
            for (std::size_t i = 0; i < instrs.size(); ++i) {
                const Instruction &inst = instrs[i];
                if (isCondBranch(inst.op) &&
                    ((inst.rs1 == ctr && inst.rs2 == lim) ||
                     (inst.rs1 == lim && inst.rs2 == ctr)))
                    cl.testBranches.push_back(
                        program.staticId(b, i));
            }
        }

        if (!found || cl.minTrip > best.minTrip) {
            best = cl;
            found = true;
        }
    }
    if (found)
        *out = best;
    return found;
}

} // namespace

std::vector<CountedLoop>
findCountedLoops(const Program &program, const Cfg &cfg,
                 const LoopForest &loops, const IntervalResult &fix)
{
    std::vector<CountedLoop> counted;
    const auto &all = loops.loops();
    for (std::size_t i = 0; i < all.size(); ++i) {
        CountedLoop cl;
        if (recognizeCountedLoop(program, cfg, fix, all[i], i, &cl))
            counted.push_back(cl);
    }
    return counted;
}

// ---------------------------------------------------------------------
// Value locality
// ---------------------------------------------------------------------

double
LocalitySummary::predictableFraction() const
{
    if (defs == 0)
        return 0.0;
    return static_cast<double>(constants + strides + lastValues) /
           static_cast<double>(defs);
}

LocalitySummary
classifyValueLocality(const Program &program, const LoopForest &loops,
                      const IntervalResult &fix)
{
    LocalitySummary sum;

    // Per-loop def-register sets, for the last-value test.
    const auto &forest = loops.loops();
    std::vector<std::set<RegId>> loop_defs(forest.size());
    std::map<BlockId, std::size_t> loop_of_header;
    for (std::size_t li = 0; li < forest.size(); ++li) {
        loop_of_header[forest[li].header] = li;
        for (const BlockId b : forest[li].blocks) {
            for (const Instruction &inst : program.block(b).instrs) {
                if (inst.dest() != kNoReg)
                    loop_defs[li].insert(inst.dest());
            }
        }
    }

    for (BlockId b = 0; b < program.numBlocks(); ++b) {
        if (b >= fix.in.size() || !fix.in[b].reachable)
            continue;
        // Innermost enclosing loop, if any.
        const std::vector<BlockId> headers = loops.enclosingHeaders(b);
        const std::set<RegId> *inner_defs = nullptr;
        if (!headers.empty())
            inner_defs = &loop_defs[loop_of_header.at(headers.back())];

        RegState state = fix.in[b];
        for (const Instruction &inst : program.block(b).instrs) {
            applyInstr(inst, &state);
            const RegId rd = inst.dest();
            if (rd == kNoReg || rd == kZeroReg)
                continue;
            ++sum.defs;
            if (state.reachable && state.regs[rd].isConst()) {
                ++sum.constants;
            } else if (inst.op == Opcode::AddI && inst.rs1 == rd &&
                       inst.imm != 0) {
                ++sum.strides;
            } else if (inner_defs != nullptr &&
                       inst.op != Opcode::Load) {
                bool invariant = true;
                for (const RegId src : inst.sources()) {
                    if (src != kZeroReg &&
                        inner_defs->count(src) != 0) {
                        invariant = false;
                        break;
                    }
                }
                if (invariant)
                    ++sum.lastValues;
                else
                    ++sum.varying;
            } else {
                ++sum.varying;
            }
        }
    }
    return sum;
}

// ---------------------------------------------------------------------
// Symbolic memory dependence
// ---------------------------------------------------------------------

namespace
{

/** Affine form over the counted loops' counters:
 *  c0 + sum(coeff_i * counter_of_loop_i). */
struct Affine
{
    enum class K : std::uint8_t
    {
        Bot, ///< join identity (unreached)
        Val, ///< a concrete affine form
        Unk, ///< absorbing top
    };
    K k = K::Bot;
    std::int64_t c0 = 0;
    /** Sorted sparse (counted-loop index, coefficient) terms. */
    std::vector<std::pair<std::uint32_t, std::int64_t>> terms;

    static Affine unknown() { return Affine{K::Unk, 0, {}}; }
    static Affine constant(std::int64_t c) { return Affine{K::Val, c, {}}; }

    static Affine
    root(std::uint32_t idx)
    {
        return Affine{K::Val, 0, {{idx, 1}}};
    }

    bool
    operator==(const Affine &o) const
    {
        if (k != o.k)
            return false;
        if (k != K::Val)
            return true;
        return c0 == o.c0 && terms == o.terms;
    }

    std::int64_t
    coeff(std::uint32_t idx) const
    {
        for (const auto &[i, c] : terms) {
            if (i == idx)
                return c;
        }
        return 0;
    }
};

Affine
affJoin(const Affine &a, const Affine &b)
{
    if (a.k == Affine::K::Bot)
        return b;
    if (b.k == Affine::K::Bot)
        return a;
    if (a == b)
        return a;
    return Affine::unknown();
}

/** a + s*b with overflow checking (wrapping machine => unknown). */
Affine
affCombine(const Affine &a, const Affine &b, std::int64_t s)
{
    if (a.k != Affine::K::Val || b.k != Affine::K::Val)
        return Affine::unknown();
    Affine r;
    r.k = Affine::K::Val;
    std::int64_t scaled = 0;
    if (!exactMul(b.c0, s, &scaled) || !exactAdd(a.c0, scaled, &r.c0))
        return Affine::unknown();
    std::map<std::uint32_t, std::int64_t> sum;
    for (const auto &[i, c] : a.terms)
        sum[i] = c;
    for (const auto &[i, c] : b.terms) {
        std::int64_t sc = 0;
        std::int64_t tot = 0;
        if (!exactMul(c, s, &sc) || !exactAdd(sum[i], sc, &tot))
            return Affine::unknown();
        sum[i] = tot;
    }
    for (const auto &[i, c] : sum) {
        if (c != 0)
            r.terms.push_back({i, c});
    }
    return r;
}

Affine
affScale(const Affine &a, std::int64_t s)
{
    return affCombine(Affine::constant(0), a, s);
}

struct AffState
{
    bool reachable = false;
    std::array<Affine, kNumRegs> regs{};

    Affine
    reg(RegId r) const
    {
        if (r == kZeroReg)
            return Affine::constant(0);
        if (r >= kNumRegs)
            return Affine::unknown();
        return regs[r];
    }

    void
    join(const AffState &other)
    {
        if (!other.reachable)
            return;
        if (!reachable) {
            *this = other;
            return;
        }
        for (RegId r = 0; r < kNumRegs; ++r)
            regs[r] = affJoin(regs[r], other.regs[r]);
    }

    bool
    operator==(const AffState &o) const
    {
        if (reachable != o.reachable)
            return false;
        if (!reachable)
            return true;
        return regs == o.regs;
    }
};

void
affApply(const Instruction &inst, AffState *state)
{
    const RegId rd = inst.dest();
    if (rd == kNoReg)
        return;
    Affine v = Affine::unknown();
    const Affine a = state->reg(inst.rs1);
    const bool imm_form = inst.rs2 == kNoReg;
    const Affine b =
        imm_form ? Affine::constant(inst.imm) : state->reg(inst.rs2);
    switch (inst.op) {
      case Opcode::LoadImm: v = Affine::constant(inst.imm); break;
      case Opcode::Add:
      case Opcode::AddI: v = affCombine(a, b, 1); break;
      case Opcode::Sub: v = affCombine(a, b, -1); break;
      case Opcode::Mul:
        if (a.k == Affine::K::Val && a.terms.empty())
            v = affScale(b, a.c0);
        else if (b.k == Affine::K::Val && b.terms.empty())
            v = affScale(a, b.c0);
        break;
      case Opcode::ShlI:
        if (imm_form && (inst.imm & 63) <= 62)
            v = affScale(a, std::int64_t{1} << (inst.imm & 63));
        break;
      default: break;
    }
    if (rd != kZeroReg)
        state->regs[rd] = v;
}

/** One memory access inside a loop: its symbolic address. */
struct Access
{
    bool isStore = false;
    Affine addr;
};

std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) == (b < 0)))
        ++q;
    return q;
}

/** Value range of a counted loop's counter at any in-loop point. */
Interval
counterRange(const CountedLoop &cl)
{
    std::int64_t hi = kPosInf;
    // The counter overshoots the limit by less than one maximum step.
    if (cl.limitAtEntry.boundedAbove()) {
        std::int64_t t = 0;
        if (exactAdd(cl.limitAtEntry.hi, cl.maxStep, &t))
            hi = t;
    }
    const std::int64_t lo =
        cl.init.boundedBelow() ? cl.init.lo : kNegInf;
    return Interval::range(std::min(lo, hi), hi);
}

/**
 * Minimum carried distance at which accesses @p a (iteration j) and
 * @p b (iteration j+k) of loop @p li can touch the same address, or 0
 * when they provably never can. Returns false when the affine forms
 * leave the question undecidable.
 */
bool
conflictDistance(const Access &a, const Access &b,
                 const CountedLoop &li, const NaturalLoop &loop,
                 const Program &program,
                 const std::vector<CountedLoop> &counted,
                 std::int64_t *min_k)
{
    if (a.addr.k != Affine::K::Val || b.addr.k != Affine::K::Val)
        return false;
    const auto self = static_cast<std::uint32_t>(li.loopIndex);
    const std::int64_t ca = a.addr.coeff(self);
    const std::int64_t cb = b.addr.coeff(self);
    if (ca != cb)
        return false; // mismatched counter coefficients: undecidable

    // D = (b.c0 - a.c0) + contributions of every *other* root.
    std::int64_t dc = 0;
    if (!exactSub(b.addr.c0, a.addr.c0, &dc))
        return false;
    Interval d = Interval::val(dc);
    std::set<std::uint32_t> roots;
    for (const auto &[i, c] : a.addr.terms)
        roots.insert(i);
    for (const auto &[i, c] : b.addr.terms)
        roots.insert(i);
    for (const std::uint32_t r : roots) {
        if (r == self)
            continue;
        const std::int64_t ar = a.addr.coeff(r);
        const std::int64_t br = b.addr.coeff(r);
        const CountedLoop &rl = counted[r];
        const bool varies =
            !defsInLoop(program, loop, rl.counter).empty();
        if (!varies && ar == br)
            continue; // loop-invariant during this entry: cancels
        const Interval range = counterRange(rl);
        if (!range.boundedBelow() || !range.boundedAbove())
            return false;
        const Interval contrib = varies || ar != br
                                     ? iSub(iMul(Interval::val(br), range),
                                            iMul(Interval::val(ar), range))
                                     : Interval::val(0);
        if (!contrib.boundedBelow() || !contrib.boundedAbove())
            return false;
        d = iAdd(d, contrib);
        if (!d.boundedBelow() || !d.boundedAbove())
            return false;
    }

    // Conflict at distance k iff c*delta_k + D can be zero, where
    // delta_k (the counter advance over k iterations) lies in
    // [k*minStep, k*maxStep]. Target interval for c*delta_k:
    const Interval t = Interval::range(-d.hi, -d.lo);
    if (ca == 0) {
        if (t.containsZero()) {
            *min_k = 1;
            return true;
        }
        *min_k = 0;
        return true;
    }
    const std::int64_t k_cap =
        li.maxTrip > 0 ? li.maxTrip - 1 : kPosInf;
    if (k_cap <= 0) {
        *min_k = 0; // at most one iteration: nothing carried
        return true;
    }
    if (li.minStep == li.maxStep) {
        // Exact arithmetic progression: c*s*k in t.
        std::int64_t p = 0;
        if (!exactMul(ca, li.minStep, &p) || p == 0)
            return false;
        std::int64_t klo = p > 0 ? ceilDiv(t.lo, p) : ceilDiv(t.hi, p);
        std::int64_t khi =
            p > 0 ? floorDiv(t.hi, p) : floorDiv(t.lo, p);
        klo = std::max<std::int64_t>(klo, 1);
        if (k_cap != kPosInf)
            khi = std::min(khi, k_cap);
        *min_k = klo <= khi ? klo : 0;
        return true;
    }
    if (k_cap == kPosInf || k_cap > (1 << 20))
        return false; // variable step and huge range: undecidable
    for (std::int64_t k = 1; k <= k_cap; ++k) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        if (!exactMul(k, li.minStep, &lo) ||
            !exactMul(k, li.maxStep, &hi))
            return false;
        const Interval delta = iMul(Interval::val(ca),
                                    Interval::range(lo, hi));
        if (!(meet(delta, t).isBottom())) {
            *min_k = k;
            return true;
        }
    }
    *min_k = 0;
    return true;
}

} // namespace

std::vector<MemDep>
analyzeLoopMemDeps(const Program &program, const Cfg &cfg,
                   const LoopForest &loops,
                   const std::vector<CountedLoop> &counted)
{
    const std::size_t n = cfg.numBlocks();
    const auto &forest = loops.loops();
    std::vector<MemDep> result(forest.size());

    // Header -> counted-loop index, for root forcing.
    std::map<BlockId, std::uint32_t> counted_of_header;
    for (std::size_t i = 0; i < counted.size(); ++i)
        counted_of_header[counted[i].header] =
            static_cast<std::uint32_t>(i);

    // Affine fixpoint (finite lattice per register: Bot < Val < Unk,
    // so the worklist terminates without widening).
    std::vector<AffState> in(n);
    if (n == 0)
        return result;
    AffState entry;
    entry.reachable = true;
    entry.regs.fill(Affine::unknown());
    entry.regs[kZeroReg] = Affine::constant(0);
    in[0] = entry;

    auto force_roots = [&](BlockId b, AffState *st) {
        const auto it = counted_of_header.find(b);
        if (it != counted_of_header.end()) {
            const RegId ctr = counted[it->second].counter;
            if (ctr != kZeroReg)
                st->regs[ctr] = Affine::root(it->second);
        }
    };
    force_roots(0, &in[0]);

    std::set<BlockId> worklist{0};
    std::uint64_t visits = 0;
    const std::uint64_t cap = 512 * static_cast<std::uint64_t>(n + 1);
    while (!worklist.empty() && visits++ < cap) {
        const BlockId b = *worklist.begin();
        worklist.erase(worklist.begin());
        if (!in[b].reachable)
            continue;
        AffState out = in[b];
        for (const Instruction &inst : program.block(b).instrs)
            affApply(inst, &out);
        for (const BlockId s : cfg.successors(b)) {
            if (s >= n)
                continue;
            AffState merged = in[s];
            merged.join(out);
            force_roots(s, &merged);
            if (!(merged == in[s])) {
                in[s] = merged;
                worklist.insert(s);
            }
        }
    }

    for (std::size_t li = 0; li < forest.size(); ++li) {
        const NaturalLoop &loop = forest[li];
        // Only counted loops have a root to phrase distances in.
        const CountedLoop *cl = nullptr;
        for (const CountedLoop &c : counted) {
            if (c.loopIndex == li) {
                cl = &c;
                break;
            }
        }

        std::vector<Access> accesses;
        bool all_known = true;
        bool any_store = false;
        for (const BlockId b : loop.blocks) {
            if (!in[b].reachable)
                continue;
            AffState st = in[b];
            force_roots(b, &st);
            for (const Instruction &inst : program.block(b).instrs) {
                const OpClass cls = opClass(inst.op);
                if (cls == OpClass::Load || cls == OpClass::Store) {
                    Access acc;
                    acc.isStore = cls == OpClass::Store;
                    any_store |= acc.isStore;
                    acc.addr = affCombine(st.reg(inst.rs1),
                                          Affine::constant(inst.imm), 1);
                    if (acc.addr.k != Affine::K::Val)
                        all_known = false;
                    accesses.push_back(acc);
                }
                affApply(inst, &st);
            }
        }

        if (!any_store) {
            result[li] = MemDep{MemDepKind::Independent, 0};
            continue;
        }
        if (cl == nullptr || !all_known) {
            result[li] = MemDep{MemDepKind::Unknown, 0};
            continue;
        }

        std::int64_t best = 0;
        bool carried = false;
        bool unknown = false;
        for (std::size_t i = 0; i < accesses.size() && !unknown; ++i) {
            for (std::size_t j = 0; j < accesses.size(); ++j) {
                if (!accesses[i].isStore && !accesses[j].isStore)
                    continue;
                std::int64_t k = 0;
                if (!conflictDistance(accesses[i], accesses[j], *cl,
                                      loop, program, counted, &k)) {
                    unknown = true;
                    break;
                }
                if (k > 0 && (!carried || k < best)) {
                    carried = true;
                    best = k;
                }
            }
        }
        if (unknown)
            result[li] = MemDep{MemDepKind::Unknown, 0};
        else if (carried)
            result[li] = MemDep{MemDepKind::Carried, best};
        else
            result[li] = MemDep{MemDepKind::Independent, 0};
    }
    return result;
}

} // namespace dee::analysis::absint
