/**
 * @file
 * Measured static profile and the generator cross-checker.
 *
 * measureStaticProfile() computes the static properties the paper's
 * argument leans on (branch density, loop structure, dependence
 * distances, per-block ILP bounds); crossCheckProfile() compares them
 * against a generator's DeclaredStaticProfile and reports
 * profile-drift findings where a measurement leaves its declared
 * range. Drift is an Error: the benches would silently evaluate the
 * models on inputs with the wrong trace-level character.
 */

#ifndef DEE_ANALYSIS_PROFILE_HH
#define DEE_ANALYSIS_PROFILE_HH

#include <cstdint>
#include <vector>

#include "analysis/dependence.hh"
#include "analysis/findings.hh"
#include "cfg/cfg.hh"
#include "cfg/structure.hh"
#include "isa/isa.hh"
#include "obs/json.hh"
#include "workloads/profiles.hh"

namespace dee::analysis
{

/** Static properties measured on one program. */
struct StaticProfile
{
    std::uint64_t blocks = 0;
    std::uint64_t instrs = 0;
    /** Conditional branches per static instruction. */
    double branchDensity = 0.0;
    /** Mean instructions per basic block. */
    double meanBlockLen = 0.0;
    std::uint64_t loopCount = 0;
    int maxLoopNest = 0;
    /** Static dependence facts (see dependence.hh). */
    double meanDepDistance = 0.0;
    double maxBlockIlp = 0.0;
    double serializedIlpBound = 0.0;

    obs::Json toJson() const;
};

/** Measures every property; the program must verify clean (the Cfg and
 *  loop analyses assume structural soundness). */
StaticProfile measureStaticProfile(const Program &program, const Cfg &cfg);

/** Compares measured vs declared; one ProfileDrift finding per
 *  property outside its range. */
std::vector<Finding> crossCheckProfile(
    const StaticProfile &measured, const DeclaredStaticProfile &declared);

} // namespace dee::analysis

#endif // DEE_ANALYSIS_PROFILE_HH
