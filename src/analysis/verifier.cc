#include "analysis/verifier.hh"

#include <algorithm>
#include <bitset>
#include <sstream>

namespace dee::analysis
{

namespace
{

using RegMask = std::bitset<kNumRegs>;

/** Registers an instruction definitely writes (invalid ids skipped). */
RegMask
defsOf(const Instruction &inst)
{
    RegMask defs;
    const RegId d = inst.dest();
    if (d != kNoReg && d < kNumRegs)
        defs.set(d);
    return defs;
}

/**
 * Successor blocks, tolerating malformed programs: out-of-range targets
 * contribute no edge (they are reported separately) and a missing
 * terminator on the last block simply ends the walk there.
 */
std::vector<BlockId>
lenientSuccessors(const Program &program, BlockId b)
{
    const std::size_t n = program.numBlocks();
    const BasicBlock &blk = program.block(b);
    std::vector<BlockId> succs;
    auto add = [&](BlockId to) {
        if (to < n &&
            std::find(succs.begin(), succs.end(), to) == succs.end())
            succs.push_back(to);
    };
    if (blk.instrs.empty()) {
        add(b + 1);
        return succs;
    }
    const Instruction &last = blk.instrs.back();
    switch (opClass(last.op)) {
      case OpClass::CondBranch:
        add(last.target);
        add(b + 1);
        break;
      case OpClass::Jump:
        add(last.target);
        break;
      case OpClass::Halt:
        break;
      default:
        add(b + 1);
        break;
    }
    return succs;
}

/** Blocks reachable from the entry over lenientSuccessors(). */
std::vector<bool>
reachableBlocks(const Program &program)
{
    const std::size_t n = program.numBlocks();
    std::vector<bool> seen(n, false);
    std::vector<BlockId> work{0};
    seen[0] = true;
    while (!work.empty()) {
        const BlockId b = work.back();
        work.pop_back();
        for (const BlockId s : lenientSuccessors(program, b)) {
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    return seen;
}

void
checkInstructionForm(const Program &program, BlockId b,
                     std::vector<Finding> *out)
{
    const BasicBlock &blk = program.block(b);
    const std::size_t n = program.numBlocks();
    for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
        const Instruction &inst = blk.instrs[i];
        const auto at = static_cast<std::int32_t>(i);

        auto check_reg = [&](RegId r, const char *which) {
            if (r == kNoReg || r < kNumRegs)
                return;
            std::ostringstream msg;
            msg << which << " register r" << int{r} << " of '"
                << opcodeName(inst.op) << "' exceeds r"
                << int{kNumRegs} - 1;
            out->push_back(Finding{FindingCode::RegisterRange, b, at,
                                   msg.str()});
        };
        check_reg(inst.rd, "destination");
        check_reg(inst.rs1, "source");
        check_reg(inst.rs2, "source");

        if (isControl(inst.op) && i + 1 != blk.instrs.size()) {
            std::ostringstream msg;
            msg << "control op '" << opcodeName(inst.op) << "' followed by "
                << blk.instrs.size() - i - 1 << " dead instruction(s)";
            out->push_back(Finding{FindingCode::ControlMidBlock, b, at,
                                   msg.str()});
        }

        if ((isCondBranch(inst.op) || inst.op == Opcode::Jump) &&
            inst.target >= n) {
            std::ostringstream msg;
            msg << "'" << opcodeName(inst.op) << "' targets block B"
                << inst.target << " but the program has " << n
                << " block(s)";
            out->push_back(Finding{FindingCode::BranchTargetRange, b, at,
                                   msg.str()});
        }

        const OpClass cls = opClass(inst.op);
        if ((cls == OpClass::IntAlu || cls == OpClass::Load) &&
            inst.rd == kZeroReg) {
            out->push_back(
                Finding{FindingCode::WriteToZeroReg, b, at,
                        std::string("result of '") + opcodeName(inst.op) +
                            "' written to r0 is dropped"});
        }
    }
}

/**
 * Forward must-be-defined dataflow: IN(B) = intersection of OUT(P) over
 * reachable predecessors, OUT(B) = IN(B) | defs(B); the entry starts
 * empty. A source register not definitely defined at its use is a
 * maybe-use-before-def. One finding per (block, register).
 */
void
checkDefBeforeUse(const Program &program,
                  const std::vector<bool> &reachable,
                  std::vector<Finding> *out)
{
    const std::size_t n = program.numBlocks();

    // Predecessor lists over the lenient graph, reachable blocks only.
    std::vector<std::vector<BlockId>> preds(n);
    for (BlockId b = 0; b < n; ++b) {
        if (!reachable[b])
            continue;
        for (const BlockId s : lenientSuccessors(program, b))
            preds[s].push_back(b);
    }

    // Block def summaries.
    std::vector<RegMask> defs(n);
    for (BlockId b = 0; b < n; ++b) {
        for (const Instruction &inst : program.block(b).instrs)
            defs[b] |= defsOf(inst);
    }

    const RegMask all = RegMask{}.set();
    std::vector<RegMask> in(n, all);
    std::vector<RegMask> outSet(n, all);
    in[0].reset();
    outSet[0] = defs[0];

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < n; ++b) {
            if (!reachable[b])
                continue;
            RegMask newIn = b == 0 ? RegMask{} : all;
            for (const BlockId p : preds[b])
                newIn &= outSet[p];
            if (b == 0)
                newIn.reset(); // the entry has no defined registers
            const RegMask newOut = newIn | defs[b];
            if (newIn != in[b] || newOut != outSet[b]) {
                in[b] = newIn;
                outSet[b] = newOut;
                changed = true;
            }
        }
    }

    // Reporting pass: walk each reachable block with its solved IN set.
    for (BlockId b = 0; b < n; ++b) {
        if (!reachable[b])
            continue;
        RegMask defined = in[b];
        RegMask reported;
        const BasicBlock &blk = program.block(b);
        for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instruction &inst = blk.instrs[i];
            for (const RegId r : inst.sources()) {
                if (r >= kNumRegs || defined.test(r) || reported.test(r))
                    continue;
                reported.set(r);
                std::ostringstream msg;
                msg << "r" << int{r} << " may be read by '"
                    << opcodeName(inst.op)
                    << "' before any write reaches it";
                out->push_back(Finding{FindingCode::UseBeforeDef, b,
                                       static_cast<std::int32_t>(i),
                                       msg.str()});
            }
            defined |= defsOf(inst);
        }
    }
}

} // namespace

std::vector<Finding>
verifyProgram(const Program &program)
{
    std::vector<Finding> findings;
    const std::size_t n = program.numBlocks();
    if (n == 0) {
        findings.push_back(Finding{FindingCode::EmptyProgram,
                                   Finding::kNoBlock, Finding::kNoInstr,
                                   "program has no blocks"});
        return findings;
    }

    for (BlockId b = 0; b < n; ++b) {
        if (program.block(b).instrs.empty()) {
            findings.push_back(Finding{FindingCode::EmptyBlock, b,
                                       Finding::kNoInstr,
                                       "block has no instructions"});
        }
        checkInstructionForm(program, b, &findings);
    }

    // Off-end fallthrough: the last block must end in halt/jump/branch
    // (a conditional branch's not-taken arm is a legal program exit,
    // matching Cfg's virtual-exit edge).
    const BlockId last = static_cast<BlockId>(n - 1);
    if (!program.block(last).hasTerminator()) {
        findings.push_back(
            Finding{FindingCode::FallthroughOffEnd, last,
                    Finding::kNoInstr,
                    "last block does not end in halt/jump/branch; "
                    "execution would fall off the program end"});
    }

    const std::vector<bool> reachable = reachableBlocks(program);
    bool reachable_halt = false;
    for (BlockId b = 0; b < n; ++b) {
        if (!reachable[b]) {
            findings.push_back(Finding{FindingCode::UnreachableBlock, b,
                                       Finding::kNoInstr,
                                       "no path from B0 reaches this "
                                       "block"});
            continue;
        }
        for (const Instruction &inst : program.block(b).instrs) {
            if (inst.op == Opcode::Halt)
                reachable_halt = true;
        }
    }
    // A reachable last block whose conditional branch can fall off the
    // end exits the program too (Cfg's virtual-exit edge).
    if (reachable[last] && !program.block(last).instrs.empty() &&
        isCondBranch(program.block(last).instrs.back().op))
        reachable_halt = true;
    if (!reachable_halt) {
        findings.push_back(Finding{FindingCode::NoHalt, Finding::kNoBlock,
                                   Finding::kNoInstr,
                                   "no reachable halt: the program "
                                   "cannot terminate"});
    }

    checkDefBeforeUse(program, reachable, &findings);
    return findings;
}

bool
verifiesClean(const Program &program)
{
    return !anyError(verifyProgram(program));
}

} // namespace dee::analysis
