/**
 * @file
 * Binary trace file format (reader/writer).
 *
 * Traces can be captured once and replayed into many model sweeps (the
 * paper runs eight models over the same benchmark traces). Layout:
 *
 *   header:  magic "DEETRAC1" (8 bytes), u32 numStatic, u64 numRecords
 *   records: packed little-endian, 24 bytes each:
 *            u32 sid, u32 block, u8 op, u8 rd, u8 rs1, u8 rs2,
 *            u8 flags (bit0 isBranch, bit1 taken), 3 pad bytes,
 *            u64 memAddr
 */

#ifndef DEE_TRACE_TRACE_IO_HH
#define DEE_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace dee
{

/** Writes a trace to a file; fatal on I/O failure. */
void writeTrace(const Trace &trace, const std::string &path);

/** Reads a trace from a file; fatal on I/O or format failure. */
Trace readTrace(const std::string &path);

} // namespace dee

#endif // DEE_TRACE_TRACE_IO_HH
