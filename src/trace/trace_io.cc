#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace dee
{

namespace
{

constexpr char kMagic[8] = {'D', 'E', 'E', 'T', 'R', 'A', 'C', '1'};
constexpr std::size_t kRecordSize = 24;

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
packU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
packU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
unpackU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
unpackU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        dee_fatal("cannot open '", path, "' for writing");

    unsigned char header[8 + 4 + 8];
    std::memcpy(header, kMagic, 8);
    packU32(header + 8, trace.numStatic);
    packU64(header + 12, trace.records.size());
    if (std::fwrite(header, sizeof(header), 1, f.get()) != 1)
        dee_fatal("short write to '", path, "'");

    std::vector<unsigned char> buf;
    buf.reserve(kRecordSize * 4096);
    auto flush = [&]() {
        if (!buf.empty() &&
            std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size())
            dee_fatal("short write to '", path, "'");
        buf.clear();
    };
    for (const auto &r : trace.records) {
        unsigned char rec[kRecordSize] = {};
        packU32(rec + 0, r.sid);
        packU32(rec + 4, r.block);
        rec[8] = static_cast<unsigned char>(r.op);
        rec[9] = r.rd;
        rec[10] = r.rs1;
        rec[11] = r.rs2;
        rec[12] = static_cast<unsigned char>((r.isBranch ? 1 : 0) |
                                             (r.taken ? 2 : 0) |
                                             (r.backward ? 4 : 0));
        packU64(rec + 16, r.memAddr);
        buf.insert(buf.end(), rec, rec + kRecordSize);
        if (buf.size() >= kRecordSize * 4096)
            flush();
    }
    flush();
}

Trace
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        dee_fatal("cannot open '", path, "' for reading");

    unsigned char header[8 + 4 + 8];
    if (std::fread(header, sizeof(header), 1, f.get()) != 1)
        dee_fatal("'", path, "' is too short to be a trace file");
    if (std::memcmp(header, kMagic, 8) != 0)
        dee_fatal("'", path, "' is not a DEETRAC1 trace file");

    Trace trace;
    trace.numStatic = unpackU32(header + 8);
    const std::uint64_t count = unpackU64(header + 12);
    trace.records.reserve(count);

    std::vector<unsigned char> buf(kRecordSize * 4096);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t batch =
            std::min<std::uint64_t>(remaining, 4096);
        if (std::fread(buf.data(), kRecordSize, batch, f.get()) != batch)
            dee_fatal("'", path, "' is truncated");
        for (std::size_t i = 0; i < batch; ++i) {
            const unsigned char *rec = buf.data() + i * kRecordSize;
            TraceRecord r;
            r.sid = unpackU32(rec + 0);
            r.block = unpackU32(rec + 4);
            r.op = static_cast<Opcode>(rec[8]);
            r.rd = rec[9];
            r.rs1 = rec[10];
            r.rs2 = rec[11];
            r.isBranch = (rec[12] & 1) != 0;
            r.taken = (rec[12] & 2) != 0;
            r.backward = (rec[12] & 4) != 0;
            r.memAddr = unpackU64(rec + 16);
            trace.records.push_back(r);
        }
        remaining -= batch;
    }
    return trace;
}

} // namespace dee
