/**
 * @file
 * Dynamic instruction traces and branch-path segmentation.
 *
 * The ILP models of Section 5 are trace driven: the simulator walks the
 * *actual* dynamic instruction stream (wrong-path work never appears; it
 * costs only time). A TraceRecord carries exactly what the timing models
 * need: the static instruction identity (for predictors / CFG lookups),
 * register operands (for flow dependencies), the effective memory address
 * (for memory flow dependencies), and branch outcomes.
 *
 * A branch path — the unit in which the paper counts resources — is "the
 * dynamic code between branches, including the exit branch"
 * (Section 1.2/2). segmentPaths() splits a trace accordingly.
 */

#ifndef DEE_TRACE_TRACE_HH
#define DEE_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace dee
{

/** One dynamic instruction. */
struct TraceRecord
{
    StaticId sid = 0;        ///< Static instruction id.
    BlockId block = 0;       ///< Containing basic block.
    Opcode op = Opcode::Nop; ///< Operation.
    RegId rd = kNoReg;       ///< Destination register or kNoReg.
    RegId rs1 = kNoReg;      ///< First source or kNoReg.
    RegId rs2 = kNoReg;      ///< Second source or kNoReg.
    std::uint64_t memAddr = 0; ///< Effective address (loads/stores).
    bool isBranch = false;   ///< Conditional branch?
    bool taken = false;      ///< Branch outcome (valid if isBranch).
    bool backward = false;   ///< Branch target is an earlier block
                             ///  (loop latch) — valid if isBranch.
};

/** Index of a dynamic instruction within a trace. */
using DynIndex = std::uint64_t;

/** A dynamic instruction stream plus the static-side sizes it indexes. */
struct Trace
{
    std::vector<TraceRecord> records;
    /** Static instruction count of the generating program. */
    std::uint32_t numStatic = 0;

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
    const TraceRecord &operator[](DynIndex i) const { return records[i]; }
};

/**
 * One branch path: records [begin, end) of the trace; the last record is
 * the exit conditional branch except possibly for the final path.
 */
struct BranchPath
{
    DynIndex begin = 0;
    DynIndex end = 0; ///< one past the last record
    bool endsInBranch = false;

    DynIndex size() const { return end - begin; }
    /** Index of the exit branch (only valid if endsInBranch). */
    DynIndex branchIndex() const { return end - 1; }
};

/** Splits a trace into branch paths at every conditional branch. */
std::vector<BranchPath> segmentPaths(const Trace &trace);

/** Reuse-friendly overload: clears and refills @p paths in place. */
void segmentPaths(const Trace &trace, std::vector<BranchPath> &paths);

/** Aggregate statistics over a trace. */
struct TraceStats
{
    std::uint64_t instructions = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t taken = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t jumps = 0;
    double branchFraction = 0.0;  ///< cond branches / instructions
    double meanPathLength = 0.0;  ///< instructions per branch path

    std::string render() const;
};

/** Computes TraceStats in one pass. */
TraceStats computeStats(const Trace &trace);

} // namespace dee

#endif // DEE_TRACE_TRACE_HH
