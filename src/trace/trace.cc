#include "trace/trace.hh"

#include <sstream>

namespace dee
{

std::vector<BranchPath>
segmentPaths(const Trace &trace)
{
    std::vector<BranchPath> paths;
    segmentPaths(trace, paths);
    return paths;
}

void
segmentPaths(const Trace &trace, std::vector<BranchPath> &paths)
{
    paths.clear();
    DynIndex begin = 0;
    for (DynIndex i = 0; i < trace.records.size(); ++i) {
        if (trace.records[i].isBranch) {
            paths.push_back(BranchPath{begin, i + 1, true});
            begin = i + 1;
        }
    }
    if (begin < trace.records.size())
        paths.push_back(
            BranchPath{begin, static_cast<DynIndex>(trace.records.size()),
                       false});
}

TraceStats
computeStats(const Trace &trace)
{
    TraceStats s;
    s.instructions = trace.records.size();
    for (const auto &r : trace.records) {
        switch (opClass(r.op)) {
          case OpClass::CondBranch:
            ++s.condBranches;
            if (r.taken)
                ++s.taken;
            break;
          case OpClass::Load:
            ++s.loads;
            break;
          case OpClass::Store:
            ++s.stores;
            break;
          case OpClass::Jump:
            ++s.jumps;
            break;
          default:
            break;
        }
    }
    if (s.instructions > 0) {
        s.branchFraction = static_cast<double>(s.condBranches) /
                           static_cast<double>(s.instructions);
    }
    if (s.condBranches > 0) {
        s.meanPathLength = static_cast<double>(s.instructions) /
                           static_cast<double>(s.condBranches);
    }
    return s;
}

std::string
TraceStats::render() const
{
    std::ostringstream oss;
    oss << "instructions:   " << instructions << "\n"
        << "cond branches:  " << condBranches << " ("
        << 100.0 * branchFraction << "% of instructions)\n"
        << "taken:          " << taken << "\n"
        << "loads:          " << loads << "\n"
        << "stores:         " << stores << "\n"
        << "jumps:          " << jumps << "\n"
        << "mean path len:  " << meanPathLength << " instructions\n";
    return oss.str();
}

} // namespace dee
