/**
 * @file
 * Forward structural analyses over the CFG: dominators and natural
 * loops.
 *
 * The postdominator machinery in cfg.hh serves the control-dependence
 * models; the *forward* direction serves the static-analysis pass
 * (src/analysis): the program verifier and the profile cross-checker
 * need to know which blocks are loop headers, how deeply loops nest,
 * and which code is structurally reachable. Same iterative
 * Cooper-Harvey-Kennedy scheme as computePostdominators(), run on the
 * forward CFG from block 0.
 *
 * Natural loops are discovered from back edges t -> h where h
 * dominates t; the loop body is everything that reaches the latch t
 * without passing the header h. Loops sharing a header are merged
 * (one NaturalLoop per header), matching the classic dragon-book
 * definition.
 */

#ifndef DEE_CFG_STRUCTURE_HH
#define DEE_CFG_STRUCTURE_HH

#include <vector>

#include "cfg/cfg.hh"
#include "isa/isa.hh"

namespace dee
{

/** Forward dominator tree over a Cfg's real blocks (entry: block 0). */
class Dominators
{
  public:
    explicit Dominators(const Cfg &cfg);

    /** Marker for blocks unreachable from the entry. */
    static constexpr BlockId kUnreachable = Cfg::kUnreachable;

    /** Immediate dominator; the entry's idom is itself, unreachable
     *  blocks return kUnreachable. */
    BlockId idom(BlockId b) const;

    /** True if a dominates b (every entry->b path passes a).
     *  Unreachable b is dominated by nothing (false, even for a==b). */
    bool dominates(BlockId a, BlockId b) const;

    /** True if the block is reachable from the entry. */
    bool reachable(BlockId b) const;

  private:
    std::size_t numBlocks_;
    std::vector<BlockId> idom_;
};

/** One natural loop (back edges sharing a header are merged). */
struct NaturalLoop
{
    BlockId header = 0;
    /** Sorted body blocks, header included. */
    std::vector<BlockId> blocks;
    /** Sources of the back edges into the header. */
    std::vector<BlockId> latches;
    /** Nesting depth: 1 for outermost loops, 2 inside one loop, ... */
    int depth = 1;

    bool contains(BlockId b) const;
};

/** All natural loops of a program, with per-block nesting depths. */
class LoopForest
{
  public:
    LoopForest(const Cfg &cfg, const Dominators &doms);

    /** Loops ordered by header block id. */
    const std::vector<NaturalLoop> &loops() const { return loops_; }

    /** Number of loops whose header is not inside another loop. */
    std::size_t numTopLevel() const;

    /** Nesting depth of a block (0: not in any loop). */
    int loopDepth(BlockId b) const;

    /** Deepest nesting in the program (0 for loop-free code). */
    int maxDepth() const;

    /**
     * Headers of every loop containing @p b, ordered outermost first
     * (empty when b is in no loop). This is the nest "stack" the
     * speculation profiler folds branch sites under.
     */
    std::vector<BlockId> enclosingHeaders(BlockId b) const;

  private:
    std::vector<NaturalLoop> loops_;
    std::vector<int> depth_; ///< per block
};

} // namespace dee

#endif // DEE_CFG_STRUCTURE_HH
