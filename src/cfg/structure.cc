#include "cfg/structure.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dee
{

Dominators::Dominators(const Cfg &cfg) : numBlocks_(cfg.numBlocks())
{
    const std::size_t n = numBlocks_;
    constexpr BlockId entry = 0;

    // Reverse post-order of the forward CFG from the entry.
    std::vector<BlockId> order; // postorder
    order.reserve(n);
    std::vector<std::uint8_t> state(n, 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<BlockId, std::size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    while (!stack.empty()) {
        auto &[node, i] = stack.back();
        const auto &succs = cfg.successors(node);
        if (i < succs.size()) {
            const BlockId next = succs[i++];
            if (next < n && state[next] == 0) { // skip the virtual exit
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            order.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end()); // RPO, entry first

    std::vector<std::size_t> rpoIndex(n, ~std::size_t{0});
    for (std::size_t i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = i;

    idom_.assign(n, kUnreachable);
    idom_[entry] = entry;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom_[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const BlockId node : order) {
            if (node == entry)
                continue;
            BlockId new_idom = kUnreachable;
            for (const BlockId p : cfg.predecessors(node)) {
                if (p >= n || idom_[p] == kUnreachable)
                    continue; // unreachable or not yet processed
                new_idom = new_idom == kUnreachable ? p
                                                    : intersect(new_idom, p);
            }
            if (new_idom != kUnreachable && idom_[node] != new_idom) {
                idom_[node] = new_idom;
                changed = true;
            }
        }
    }
}

BlockId
Dominators::idom(BlockId b) const
{
    dee_assert(b < numBlocks_, "idom of unknown block ", b);
    return idom_[b];
}

bool
Dominators::reachable(BlockId b) const
{
    dee_assert(b < numBlocks_, "reachable of unknown block ", b);
    return idom_[b] != kUnreachable;
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    dee_assert(a < numBlocks_ && b < numBlocks_,
               "dominates over unknown blocks");
    if (!reachable(b))
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == 0) // reached the entry without meeting a
            return false;
        cur = idom_[cur];
    }
}

bool
NaturalLoop::contains(BlockId b) const
{
    return std::binary_search(blocks.begin(), blocks.end(), b);
}

LoopForest::LoopForest(const Cfg &cfg, const Dominators &doms)
{
    const std::size_t n = cfg.numBlocks();
    depth_.assign(n, 0);

    // Collect back edges t -> h (h dominates t), merged per header.
    for (BlockId h = 0; h < n; ++h) {
        std::vector<BlockId> latches;
        for (const BlockId t : cfg.predecessors(h)) {
            if (t < n && doms.reachable(t) && doms.dominates(h, t))
                latches.push_back(t);
        }
        if (latches.empty())
            continue;

        // Loop body: h plus everything reaching a latch backwards
        // without passing h.
        std::vector<bool> in(n, false);
        in[h] = true;
        std::vector<BlockId> work;
        for (const BlockId t : latches) {
            if (!in[t]) {
                in[t] = true;
                work.push_back(t);
            }
        }
        while (!work.empty()) {
            const BlockId b = work.back();
            work.pop_back();
            for (const BlockId p : cfg.predecessors(b)) {
                if (p < n && doms.reachable(p) && !in[p]) {
                    in[p] = true;
                    work.push_back(p);
                }
            }
        }

        NaturalLoop loop;
        loop.header = h;
        loop.latches = std::move(latches);
        for (BlockId b = 0; b < n; ++b) {
            if (in[b])
                loop.blocks.push_back(b);
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting depth: a block's depth is the number of loops containing
    // it; a loop's depth is the depth of its header.
    for (const NaturalLoop &loop : loops_) {
        for (const BlockId b : loop.blocks)
            ++depth_[b];
    }
    for (NaturalLoop &loop : loops_)
        loop.depth = depth_[loop.header];
}

std::size_t
LoopForest::numTopLevel() const
{
    std::size_t count = 0;
    for (const NaturalLoop &loop : loops_) {
        if (loop.depth == 1)
            ++count;
    }
    return count;
}

int
LoopForest::loopDepth(BlockId b) const
{
    dee_assert(b < depth_.size(), "loopDepth of unknown block ", b);
    return depth_[b];
}

int
LoopForest::maxDepth() const
{
    int deepest = 0;
    for (const int d : depth_)
        deepest = std::max(deepest, d);
    return deepest;
}

std::vector<BlockId>
LoopForest::enclosingHeaders(BlockId b) const
{
    std::vector<BlockId> headers;
    for (const NaturalLoop &loop : loops_) {
        if (loop.contains(b))
            headers.push_back(loop.header);
    }
    // Containing loops of one block always nest, so their depths are
    // distinct and sorting by depth yields outermost -> innermost.
    std::sort(headers.begin(), headers.end(),
              [this](BlockId a, BlockId c) {
                  return depth_[a] < depth_[c];
              });
    return headers;
}

} // namespace dee
