#include "cfg/liveness.hh"

#include "common/logging.hh"

namespace dee
{

RegSet
usesOf(const Instruction &inst)
{
    RegSet set;
    for (RegId r : inst.sources())
        set.set(r);
    return set;
}

RegSet
defsOf(const Instruction &inst)
{
    RegSet set;
    const RegId d = inst.dest();
    if (d != kNoReg)
        set.set(d);
    return set;
}

Liveness::Liveness(const Program &program, const Cfg &cfg)
{
    const std::size_t n = program.numBlocks();
    liveIn_.assign(n, RegSet{});
    liveOut_.assign(n, RegSet{});

    // Per-block use (read before any write) and def sets.
    std::vector<RegSet> use(n), def(n);
    for (BlockId b = 0; b < n; ++b) {
        for (const Instruction &inst : program.block(b).instrs) {
            use[b] |= usesOf(inst) & ~def[b];
            def[b] |= defsOf(inst);
        }
    }

    // Iterate to fixpoint (backward).
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = n; i-- > 0;) {
            const auto b = static_cast<BlockId>(i);
            RegSet out;
            for (BlockId s : cfg.successors(b))
                if (s < n)
                    out |= liveIn_[s];
            const RegSet in = use[b] | (out & ~def[b]);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = out;
                liveIn_[b] = in;
                changed = true;
            }
        }
    }
}

const RegSet &
Liveness::liveIn(BlockId b) const
{
    dee_assert(b < liveIn_.size(), "liveIn of unknown block ", b);
    return liveIn_[b];
}

const RegSet &
Liveness::liveOut(BlockId b) const
{
    dee_assert(b < liveOut_.size(), "liveOut of unknown block ", b);
    return liveOut_[b];
}

bool
Liveness::isLiveIn(BlockId b, RegId r) const
{
    return r < kNumRegs && liveIn(b).test(r);
}

} // namespace dee
