#include "cfg/cfg.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dee
{

Cfg::Cfg(const Program &program) : numBlocks_(program.numBlocks())
{
    dee_assert(numBlocks_ > 0, "Cfg over empty program");
    buildEdges(program);
    computePostdominators();
    computeControlDependence(program);
    computeTotalControlDependence(program);
}

void
Cfg::buildEdges(const Program &program)
{
    const std::size_t n = numBlocks_ + 1; // + virtual exit
    succs_.assign(n, {});
    preds_.assign(n, {});

    auto add_edge = [&](BlockId from, BlockId to) {
        succs_[from].push_back(to);
        preds_[to].push_back(from);
    };

    for (BlockId b = 0; b < numBlocks_; ++b) {
        const BasicBlock &blk = program.block(b);
        if (blk.instrs.empty()) {
            // Empty block: pure fallthrough.
            dee_assert(b + 1 < numBlocks_, "empty final block");
            add_edge(b, b + 1);
            continue;
        }
        const Instruction &last = blk.instrs.back();
        switch (opClass(last.op)) {
          case OpClass::CondBranch:
            add_edge(b, last.target);
            dee_assert(b + 1 < numBlocks_ || last.target < numBlocks_,
                       "branch fallthrough off program end");
            if (b + 1 < numBlocks_)
                add_edge(b, b + 1);
            else
                add_edge(b, exitNode());
            break;
          case OpClass::Jump:
            add_edge(b, last.target);
            break;
          case OpClass::Halt:
            add_edge(b, exitNode());
            break;
          default:
            dee_assert(b + 1 < numBlocks_,
                       "fallthrough off program end (validate missed it)");
            add_edge(b, b + 1);
            break;
        }
    }

    // Deduplicate (a branch whose target equals its fallthrough).
    for (auto &v : succs_) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    for (auto &v : preds_) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
}

void
Cfg::computePostdominators()
{
    const std::size_t n = numBlocks_ + 1;
    const BlockId exit = exitNode();

    // Reverse post-order of the *reverse* CFG, from the exit node.
    std::vector<BlockId> order; // postorder of reverse CFG
    order.reserve(n);
    std::vector<std::uint8_t> state(n, 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<BlockId, std::size_t>> stack;
    stack.emplace_back(exit, 0);
    state[exit] = 1;
    while (!stack.empty()) {
        auto &[node, idx] = stack.back();
        const auto &edges = preds_[node]; // reverse CFG successor = pred
        if (idx < edges.size()) {
            const BlockId next = edges[idx++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            order.push_back(node);
            stack.pop_back();
        }
    }
    // order is postorder; reverse it for RPO (exit first).
    std::reverse(order.begin(), order.end());

    std::vector<std::size_t> rpoIndex(n, ~std::size_t{0});
    for (std::size_t i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = i;

    ipdom_.assign(n, kUnreachable);
    ipdom_[exit] = exit;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = ipdom_[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = ipdom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId node : order) {
            if (node == exit)
                continue;
            BlockId new_ipdom = kUnreachable;
            for (BlockId s : succs_[node]) { // reverse-CFG preds = succs
                if (ipdom_[s] == kUnreachable && s != exit)
                    continue; // not yet processed / unreachable
                if (rpoIndex[s] == ~std::size_t{0})
                    continue; // successor cannot reach exit
                if (new_ipdom == kUnreachable)
                    new_ipdom = s;
                else
                    new_ipdom = intersect(new_ipdom, s);
            }
            if (new_ipdom != kUnreachable && ipdom_[node] != new_ipdom) {
                ipdom_[node] = new_ipdom;
                changed = true;
            }
        }
    }
}

BlockId
Cfg::ipostdom(BlockId b) const
{
    dee_assert(b <= numBlocks_, "ipostdom of unknown node ", b);
    return ipdom_[b];
}

bool
Cfg::postdominates(BlockId a, BlockId b) const
{
    // Walk b's postdominator chain looking for a.
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == exitNode() || cur == kUnreachable)
            return a == cur;
        cur = ipdom_[cur];
        if (cur == kUnreachable)
            return false;
    }
}

void
Cfg::computeControlDependence(const Program &program)
{
    cdeps_.assign(numBlocks_ + 1, {});
    for (BlockId a = 0; a < numBlocks_; ++a) {
        const BasicBlock &blk = program.block(a);
        if (blk.instrs.empty() || !isCondBranch(blk.instrs.back().op))
            continue;
        for (BlockId b : succs_[a]) {
            // Ferrante et al.: nodes control dependent on edge (a, b) are
            // b and its postdominator ancestors up to, not including,
            // ipostdom(a).
            const BlockId stop = ipdom_[a];
            BlockId cur = b;
            while (cur != stop && cur != exitNode() &&
                   cur != kUnreachable) {
                cdeps_[a].push_back(cur);
                cur = ipdom_[cur];
            }
        }
        auto &v = cdeps_[a];
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
}

void
Cfg::computeTotalControlDependence(const Program &program)
{
    totalCdeps_.assign(numBlocks_ + 1, {});
    // For each branch block a, closure over "control dependent block also
    // ends in a branch" chains. Breadth-first over the CD graph.
    for (BlockId a = 0; a < numBlocks_; ++a) {
        if (cdeps_[a].empty())
            continue;
        std::vector<bool> seen(numBlocks_ + 1, false);
        std::vector<BlockId> frontier = cdeps_[a];
        for (BlockId x : frontier)
            seen[x] = true;
        std::vector<BlockId> result = frontier;
        while (!frontier.empty()) {
            std::vector<BlockId> next;
            for (BlockId x : frontier) {
                const BasicBlock &blk = program.block(x);
                if (blk.instrs.empty() ||
                    !isCondBranch(blk.instrs.back().op)) {
                    continue;
                }
                for (BlockId y : cdeps_[x]) {
                    if (!seen[y]) {
                        seen[y] = true;
                        next.push_back(y);
                        result.push_back(y);
                    }
                }
            }
            frontier = std::move(next);
        }
        std::sort(result.begin(), result.end());
        totalCdeps_[a] = std::move(result);
    }
}

const std::vector<BlockId> &
Cfg::successors(BlockId b) const
{
    dee_assert(b <= numBlocks_, "successors of unknown node ", b);
    return succs_[b];
}

const std::vector<BlockId> &
Cfg::predecessors(BlockId b) const
{
    dee_assert(b <= numBlocks_, "predecessors of unknown node ", b);
    return preds_[b];
}

const std::vector<BlockId> &
Cfg::controlDependents(BlockId a) const
{
    dee_assert(a <= numBlocks_, "controlDependents of unknown node ", a);
    return cdeps_[a];
}

const std::vector<BlockId> &
Cfg::totalControlDependents(BlockId a) const
{
    dee_assert(a <= numBlocks_, "totalControlDependents of unknown ", a);
    return totalCdeps_[a];
}

bool
Cfg::isControlDependent(BlockId x, BlockId a) const
{
    const auto &v = controlDependents(a);
    return std::binary_search(v.begin(), v.end(), x);
}

bool
Cfg::isTotalControlDependent(BlockId x, BlockId a) const
{
    const auto &v = totalControlDependents(a);
    return std::binary_search(v.begin(), v.end(), x);
}

} // namespace dee
