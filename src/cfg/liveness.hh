/**
 * @file
 * Register liveness analysis (backward may-dataflow over the CFG).
 *
 * Needed by the software-DEE VLIW scheduler (src/vliw): hoisting an
 * instruction speculatively above a branch is only safe if its
 * destination register is dead on the path not hoisted from. Classic
 * iterative live-variable analysis:
 *
 *     liveOut(B) = union over successors S of liveIn(S)
 *     liveIn(B)  = use(B) | (liveOut(B) & ~def(B))
 *
 * r0 is never live (reads as constant zero).
 */

#ifndef DEE_CFG_LIVENESS_HH
#define DEE_CFG_LIVENESS_HH

#include <bitset>
#include <vector>

#include "cfg/cfg.hh"
#include "isa/isa.hh"

namespace dee
{

/** Set of architectural registers. */
using RegSet = std::bitset<kNumRegs>;

/** Per-block liveness solution. */
class Liveness
{
  public:
    /** Solves liveness for the program over its CFG. */
    Liveness(const Program &program, const Cfg &cfg);

    /** Registers live on entry to block b. */
    const RegSet &liveIn(BlockId b) const;

    /** Registers live on exit from block b. */
    const RegSet &liveOut(BlockId b) const;

    /** True if register r is live on entry to block b. */
    bool isLiveIn(BlockId b, RegId r) const;

  private:
    std::vector<RegSet> liveIn_;
    std::vector<RegSet> liveOut_;
};

/** Registers read by an instruction (r0 excluded). */
RegSet usesOf(const Instruction &inst);

/** Register written by an instruction as a set (empty or singleton). */
RegSet defsOf(const Instruction &inst);

} // namespace dee

#endif // DEE_CFG_LIVENESS_HH
