/**
 * @file
 * Control-flow graph and control-dependence analysis.
 *
 * The paper's CD and CD-MF models rest on *reduced* and *minimal* control
 * dependencies (its reference [2], Ferrante/Ottenstein/Warren; and [8],
 * Uht's minimal procedural dependencies). Because this repository
 * generates its own programs, we can compute exact control dependencies:
 *
 *  - the block-level CFG (with a virtual exit node),
 *  - postdominators (iterative Cooper-Harvey-Kennedy on the reverse CFG),
 *  - the control-dependence relation "block X is control dependent on the
 *    branch terminating block A" (X postdominates a successor of A but
 *    not A itself), and
 *  - its transitive closure, matching Levo's "total control dependencies"
 *    (Section 4.3) through chains of control dependencies.
 */

#ifndef DEE_CFG_CFG_HH
#define DEE_CFG_CFG_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace dee
{

/** CFG over a Program's basic blocks plus a virtual exit node. */
class Cfg
{
  public:
    /** Builds the CFG; the program must already validate(). */
    explicit Cfg(const Program &program);

    /** Number of real blocks (the virtual exit is not counted). */
    std::size_t numBlocks() const { return numBlocks_; }

    /** Virtual exit node id (== numBlocks()). */
    BlockId exitNode() const { return static_cast<BlockId>(numBlocks_); }

    const std::vector<BlockId> &successors(BlockId b) const;
    const std::vector<BlockId> &predecessors(BlockId b) const;

    /**
     * Immediate postdominator of block b, or exitNode() for blocks whose
     * only postdominator is the exit. The exit node's ipostdom is itself.
     * Blocks that cannot reach the exit have ipostdom == kUnreachable.
     */
    BlockId ipostdom(BlockId b) const;

    /** Marker for blocks with no path to the exit. */
    static constexpr BlockId kUnreachable = 0xffffffff;

    /** True if a postdominates b (every path b->exit passes a). */
    bool postdominates(BlockId a, BlockId b) const;

    /**
     * Blocks directly control dependent on the branch ending block a
     * (empty unless block a ends in a conditional branch). Sorted.
     */
    const std::vector<BlockId> &controlDependents(BlockId a) const;

    /**
     * Blocks transitively ("totally") control dependent on block a's
     * branch: the closure of controlDependents over chains of control
     * dependencies. Sorted; includes the direct dependents.
     */
    const std::vector<BlockId> &totalControlDependents(BlockId a) const;

    /** True if block x is directly control dependent on block a. */
    bool isControlDependent(BlockId x, BlockId a) const;

    /** True if block x is transitively control dependent on block a. */
    bool isTotalControlDependent(BlockId x, BlockId a) const;

  private:
    void buildEdges(const Program &program);
    void computePostdominators();
    void computeControlDependence(const Program &program);
    void computeTotalControlDependence(const Program &program);

    std::size_t numBlocks_;
    // Indexed by node id, including the exit node at numBlocks_.
    std::vector<std::vector<BlockId>> succs_;
    std::vector<std::vector<BlockId>> preds_;
    std::vector<BlockId> ipdom_;
    std::vector<std::vector<BlockId>> cdeps_;
    std::vector<std::vector<BlockId>> totalCdeps_;
};

} // namespace dee

#endif // DEE_CFG_CFG_HH
