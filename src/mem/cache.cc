#include "mem/cache.hh"

#include <bit>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/registry.hh"

namespace dee
{

MemoryConfig
MemoryConfig::small()
{
    MemoryConfig config;
    config.l1 = CacheLevelConfig{8, 16, 2, 1};  // 256 words
    config.l2 = CacheLevelConfig{8, 64, 4, 10}; // 2K words
    config.memoryLatency = 100;
    return config;
}

double
MemoryStats::l1HitRate() const
{
    const std::uint64_t total = l1Hits + l1Misses;
    return total == 0 ? 0.0
                      : static_cast<double>(l1Hits) /
                            static_cast<double>(total);
}

double
MemoryStats::l2HitRate() const
{
    const std::uint64_t total = l2Hits + l2Misses;
    return total == 0 ? 0.0
                      : static_cast<double>(l2Hits) /
                            static_cast<double>(total);
}

std::string
MemoryStats::render() const
{
    std::ostringstream oss;
    oss << "accesses=" << accesses << " loads=" << loads
        << " L1 hit=" << Table::fmtPercent(l1HitRate()) << " L2 hit="
        << Table::fmtPercent(l2HitRate()) << " meanLoadLat="
        << Table::fmt(meanLoadLatency);
    return oss.str();
}

CacheLevel::CacheLevel(const CacheLevelConfig &config) : config_(config)
{
    dee_assert(config.lineWords > 0 &&
                   std::has_single_bit(
                       static_cast<unsigned>(config.lineWords)),
               "lineWords must be a power of two");
    dee_assert(config.sets > 0 &&
                   std::has_single_bit(static_cast<unsigned>(config.sets)),
               "sets must be a power of two");
    dee_assert(config.ways > 0, "ways must be positive");
    lineShift_ = static_cast<unsigned>(
        std::countr_zero(static_cast<unsigned>(config.lineWords)));
    setMask_ = static_cast<std::uint64_t>(config.sets) - 1;
    tags_.assign(static_cast<std::size_t>(config.sets) * config.ways,
                 ~std::uint64_t{0});
    lru_.assign(tags_.size(), 0);
}

void
CacheLevel::reset()
{
    tags_.assign(tags_.size(), ~std::uint64_t{0});
    lru_.assign(lru_.size(), 0);
    tick_ = 0;
}

bool
CacheLevel::access(std::uint64_t word_addr)
{
    const std::uint64_t line = word_addr >> lineShift_;
    const auto set = static_cast<std::size_t>(line & setMask_);
    const std::uint64_t tag = line >> std::countr_zero(
                                  static_cast<unsigned>(config_.sets));
    const std::size_t base = set * static_cast<std::size_t>(config_.ways);
    ++tick_;

    std::size_t victim = base;
    std::uint32_t oldest = ~std::uint32_t{0};
    for (int w = 0; w < config_.ways; ++w) {
        const std::size_t slot = base + static_cast<std::size_t>(w);
        if (tags_[slot] == tag) {
            lru_[slot] = tick_;
            return true;
        }
        if (lru_[slot] < oldest) {
            oldest = lru_[slot];
            victim = slot;
        }
    }
    tags_[victim] = tag;
    lru_[victim] = tick_;
    return false;
}

MemoryStats
computeMemoryLatencies(const Trace &trace, const MemoryConfig &config,
                       std::vector<int> *out_latencies)
{
    CacheLevel l1(config.l1);
    CacheLevel l2(config.l2);
    MemoryStats stats;
    if (out_latencies)
        out_latencies->assign(trace.size(), 0);

    std::uint64_t load_latency_sum = 0;
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const TraceRecord &rec = trace.records[i];
        const OpClass cls = opClass(rec.op);
        if (cls != OpClass::Load && cls != OpClass::Store)
            continue;
        ++stats.accesses;

        int latency = config.l1.hitLatency;
        if (l1.access(rec.memAddr)) {
            ++stats.l1Hits;
        } else {
            ++stats.l1Misses;
            if (l2.access(rec.memAddr)) {
                ++stats.l2Hits;
                latency = config.l2.hitLatency;
            } else {
                ++stats.l2Misses;
                latency = config.memoryLatency;
            }
        }

        if (cls == OpClass::Load) {
            ++stats.loads;
            load_latency_sum += static_cast<std::uint64_t>(latency);
            if (out_latencies)
                (*out_latencies)[i] = latency;
        }
        // Stores are write-buffered: unit completion, but they still
        // warm the hierarchy above (write-allocate).
    }
    if (stats.loads > 0) {
        stats.meanLoadLatency =
            static_cast<double>(load_latency_sum) /
            static_cast<double>(stats.loads);
    }

    obs::Registry &reg = obs::Registry::global();
    reg.counter("mem.accesses") += stats.accesses;
    reg.counter("mem.l1.hits") += stats.l1Hits;
    reg.counter("mem.l1.misses") += stats.l1Misses;
    reg.counter("mem.l2.hits") += stats.l2Hits;
    reg.counter("mem.l2.misses") += stats.l2Misses;
    reg.stat("mem.load_latency").add(stats.meanLoadLatency);
    return stats;
}

} // namespace dee
