/**
 * @file
 * Cache hierarchy model (the paper's future work: "a suitable memory
 * system will be studied").
 *
 * A set-associative, LRU, write-allocate two-level hierarchy replayed
 * over the dynamic reference stream of a trace. Because the ILP
 * simulators are trace driven, the hierarchy is applied as a
 * preprocessing pass: computeMemoryLatencies() walks the trace once in
 * program order and assigns each load its hit/miss service latency,
 * which WindowSim/oracleSim consume through SimConfig::loadLatencies.
 * (Timing-independent replay is the standard idealization for limit
 * studies; stores are assumed write-buffered at unit cost.)
 *
 * Addresses in the repo ISA are word-granular, so line sizes are given
 * in words.
 */

#ifndef DEE_MEM_CACHE_HH
#define DEE_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace dee
{

/** One cache level's geometry and hit latency. */
struct CacheLevelConfig
{
    int lineWords = 8;   ///< words per line (power of two)
    int sets = 64;       ///< number of sets (power of two)
    int ways = 4;        ///< associativity
    int hitLatency = 1;  ///< cycles on hit at this level

    /** Capacity in words. */
    std::int64_t capacityWords() const
    {
        return static_cast<std::int64_t>(lineWords) * sets * ways;
    }
};

/** Whole-hierarchy configuration. */
struct MemoryConfig
{
    CacheLevelConfig l1{8, 64, 4, 1};    ///< ~2K words
    CacheLevelConfig l2{8, 512, 8, 8};   ///< ~32K words
    int memoryLatency = 60;              ///< cycles on L2 miss

    /** A tiny L1 / slow memory stress point. */
    static MemoryConfig small();
};

/** Replay statistics. */
struct MemoryStats
{
    std::uint64_t accesses = 0; ///< loads + stores replayed
    std::uint64_t loads = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;

    double l1HitRate() const;
    double l2HitRate() const; ///< of L1 misses
    /** Mean load service latency in cycles. */
    double meanLoadLatency = 0.0;

    std::string render() const;
};

/** One set-associative LRU cache level. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheLevelConfig &config);

    /** Accesses one word address; allocates on miss. @return hit? */
    bool access(std::uint64_t word_addr);

    /** Empties the cache. */
    void reset();

  private:
    CacheLevelConfig config_;
    unsigned lineShift_;
    std::uint64_t setMask_;
    // tags_[set * ways + way]; ~0 = invalid. lru_ holds ages.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint32_t> lru_;
    std::uint32_t tick_ = 0;
};

/**
 * Replays the trace's memory references through a fresh hierarchy.
 *
 * @param out_latencies if non-null, resized to trace.size() with the
 *        per-record load latency (0 for non-loads) — feed it to
 *        SimConfig::loadLatencies.
 */
MemoryStats computeMemoryLatencies(const Trace &trace,
                                   const MemoryConfig &config,
                                   std::vector<int> *out_latencies);

} // namespace dee

#endif // DEE_MEM_CACHE_HH
