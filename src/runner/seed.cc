#include "runner/seed.hh"

#include "common/random.hh"

namespace dee::runner
{

std::uint64_t
hashCombine(std::uint64_t state, std::string_view text)
{
    // Length first so ("ab","c") and ("a","bc") cannot collide when
    // chained.
    state = hashCombine(state, static_cast<std::uint64_t>(text.size()));
    for (const char c : text) {
        state ^= static_cast<std::uint64_t>(
            static_cast<unsigned char>(c));
        splitMix64(state);
    }
    return state;
}

std::uint64_t
hashCombine(std::uint64_t state, std::uint64_t value)
{
    state ^= value;
    splitMix64(state);
    return state;
}

std::uint64_t
cellSeed(std::uint64_t master, std::string_view workload,
         std::string_view model, std::uint64_t scale)
{
    std::uint64_t state = hashCombine(master, workload);
    state = hashCombine(state, model);
    state = hashCombine(state, scale);
    // One final avalanche; splitMix64 advances state and returns the
    // mixed output, which is what we hand out.
    const std::uint64_t seed = splitMix64(state);
    return seed == 0 ? 0x9e3779b97f4a7c15ull : seed;
}

} // namespace dee::runner
