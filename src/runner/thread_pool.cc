#include "runner/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dee::runner
{

namespace
{

/** Worker identity of the calling thread (pool + queue index). */
struct WorkerId
{
    const ThreadPool *pool = nullptr;
    unsigned index = 0;
};

thread_local WorkerId current_worker;

} // namespace

unsigned
ThreadPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareConcurrency();
    queues_.reserve(threads);
    tallies_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        queues_.push_back(std::make_unique<Queue>());
        tallies_.push_back(std::make_unique<WorkerTally>());
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    dee_assert(static_cast<bool>(fn), "ThreadPool::submit(null)");
    std::packaged_task<void()> task(std::move(fn));
    std::future<void> future = task.get_future();

    // A worker submits to its own deque (front, LIFO: nested work runs
    // soonest and stays cache-warm); external threads round-robin.
    unsigned target;
    if (current_worker.pool == this) {
        target = current_worker.index;
    } else {
        target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                 static_cast<unsigned>(queues_.size());
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        if (current_worker.pool == this)
            queues_[target]->tasks.push_front(std::move(task));
        else
            queues_[target]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    wake_.notify_one();
    return future;
}

bool
ThreadPool::popTask(std::packaged_task<void()> &task)
{
    const auto n = static_cast<unsigned>(queues_.size());
    // Own queue first (front), then steal from siblings' backs.
    const bool is_worker = current_worker.pool == this;
    const unsigned self = is_worker ? current_worker.index : 0;
    for (unsigned k = 0; k < n; ++k) {
        const unsigned q = (self + k) % n;
        std::lock_guard<std::mutex> lock(queues_[q]->mutex);
        if (queues_[q]->tasks.empty())
            continue;
        if (k == 0 && is_worker) {
            task = std::move(queues_[q]->tasks.front());
            queues_[q]->tasks.pop_front();
        } else {
            task = std::move(queues_[q]->tasks.back());
            queues_[q]->tasks.pop_back();
        }
        pending_.fetch_sub(1, std::memory_order_acquire);
        if (is_worker) {
            WorkerTally &tally = *tallies_[self];
            tally.tasks.fetch_add(1, std::memory_order_relaxed);
            if (k != 0)
                tally.steals.fetch_add(1, std::memory_order_relaxed);
        } else {
            externalTasks_.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
    }
    return false;
}

std::vector<WorkerStats>
ThreadPool::workerStats() const
{
    std::vector<WorkerStats> stats;
    stats.reserve(tallies_.size());
    for (const auto &tally : tallies_) {
        WorkerStats s;
        s.tasks = tally->tasks.load(std::memory_order_relaxed);
        s.steals = tally->steals.load(std::memory_order_relaxed);
        s.idleMs = static_cast<double>(tally->idleNs.load(
                       std::memory_order_relaxed)) /
                   1e6;
        stats.push_back(s);
    }
    return stats;
}

bool
ThreadPool::runPendingTask()
{
    std::packaged_task<void()> task;
    if (!popTask(task))
        return false;
    task(); // exceptions land in the task's future
    return true;
}

void
ThreadPool::workerLoop(unsigned index)
{
    current_worker = WorkerId{this, index};
    WorkerTally &tally = *tallies_[index];
    while (true) {
        if (runPendingTask())
            continue;
        const auto park_start = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(wakeMutex_);
        if (stopping_ && pending_.load(std::memory_order_acquire) == 0)
            return;
        wake_.wait_for(lock, std::chrono::milliseconds(1), [this] {
            return stopping_ ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        lock.unlock();
        const auto parked = std::chrono::steady_clock::now() - park_start;
        tally.idleNs.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    parked)
                    .count()),
            std::memory_order_relaxed);
    }
    current_worker = WorkerId{};
}

void
ThreadPool::wait(std::future<void> &future)
{
    dee_assert(future.valid(), "ThreadPool::wait on an empty future");
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
        // Helping keeps a worker that waits on pool-run work from
        // deadlocking the pool; external threads help too rather than
        // busy-sleeping.
        if (!runPendingTask())
            future.wait_for(std::chrono::microseconds(200));
    }
    future.get();
}

} // namespace dee::runner
