/**
 * @file
 * Per-cell seed derivation for deterministic parallel sweeps.
 *
 * Every grid cell (workload x model x scale) gets its own PRNG seed,
 * derived by hashing the cell's coordinates into the master seed with
 * SplitMix64. Two properties matter:
 *
 *  - the seed is a pure function of the coordinates, never of thread
 *    count or execution order, so parallel and serial runs agree;
 *  - distinct cells get decorrelated streams (no block-splitting of a
 *    single stream, which would make one cell's draw count perturb its
 *    neighbour's results).
 */

#ifndef DEE_RUNNER_SEED_HH
#define DEE_RUNNER_SEED_HH

#include <cstdint>
#include <string_view>

namespace dee::runner
{

/** Folds @p text into @p state one byte at a time via SplitMix64. */
std::uint64_t hashCombine(std::uint64_t state, std::string_view text);

/** Folds @p value into @p state via SplitMix64. */
std::uint64_t hashCombine(std::uint64_t state, std::uint64_t value);

/**
 * Seed for the (workload, model, scale) cell of a sweep run with
 * @p master. Never returns 0 (0 is the "unperturbed template" seed in
 * dee::workloads).
 */
std::uint64_t cellSeed(std::uint64_t master, std::string_view workload,
                       std::string_view model, std::uint64_t scale);

} // namespace dee::runner

#endif // DEE_RUNNER_SEED_HH
