/**
 * @file
 * Deterministic parallel cell driver for grid-shaped bench sweeps.
 *
 * A sweep is a grid of independent cells (workload x model x scale, or
 * whatever shape a tool needs), each a closure over its cell index.
 * runCells() executes them either serially (--jobs 1: today's exact
 * code path, untouched observability) or on a work-stealing pool
 * (--jobs N): each cell then runs inside an obs::IsolationScope so all
 * of its registry/tracer/profile output lands in a private
 * obs::CellSink, and the main thread folds the sinks back into the
 * process-wide instances *in cell-index order* once each cell
 * finishes. Because every merge operation is exact (counter adds,
 * stat sample replay, histogram bucket adds) and the merge order is
 * the grid order, the merged state is bit-identical to the serial run
 * regardless of thread count or scheduling. Derived scalars (acct.*
 * fractions, prof.* percentiles) are re-derived once from the merged
 * integers after the last cell lands.
 *
 * Wall-clock observability (parallel path only, since it is
 * nondeterministic by nature): runner.cells, runner.jobs,
 * runner.wall_ms and the per-cell runner.cell_wall_ms stat.
 */

#ifndef DEE_RUNNER_SWEEP_HH
#define DEE_RUNNER_SWEEP_HH

#include <cstddef>
#include <functional>

#include "common/cli.hh"

namespace dee::runner
{

/** How a sweep distributes its cells. */
struct SweepOptions
{
    /** Worker threads; 1 = serial (legacy path), 0 = auto-detect. */
    int jobs = 1;
};

/** Declares --jobs on @p cli (default 0 = hardware concurrency). */
void declareFlags(Cli &cli);

/** Reads the flags declared by declareFlags(). */
SweepOptions fromCli(const Cli &cli);

/** Resolves options.jobs: 0 becomes ThreadPool::hardwareConcurrency(),
 *  negatives are a fatal user error. */
unsigned effectiveJobs(const SweepOptions &options);

/**
 * Runs @p run(0) ... @p run(cells - 1), serially in index order when
 * effectiveJobs(options) == 1, else on a pool with per-cell
 * observability isolation and deterministic in-order merging (see the
 * file comment). @p run must not touch shared mutable state other
 * than through the obs global() accessors; anything it publishes
 * there is merged for it. Exceptions thrown by a cell propagate to
 * the caller (first cell in index order wins).
 */
void runCells(std::size_t cells, const SweepOptions &options,
              const std::function<void(std::size_t)> &run);

} // namespace dee::runner

#endif // DEE_RUNNER_SWEEP_HH
