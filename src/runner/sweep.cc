#include "runner/sweep.hh"

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/accounting.hh"
#include "obs/hotspot/hotspot.hh"
#include "obs/isolate.hh"
#include "obs/perf/perf.hh"
#include "obs/profile/profile.hh"
#include "obs/registry.hh"
#include "obs/telemetry/telemetry.hh"
#include "obs/trace_event.hh"
#include "runner/thread_pool.hh"

namespace dee::runner
{

void
declareFlags(Cli &cli)
{
    cli.flag("jobs", "1",
             "worker threads for the sweep grid (0 = all hardware "
             "threads, 1 = serial)");
}

SweepOptions
fromCli(const Cli &cli)
{
    SweepOptions options;
    options.jobs = static_cast<int>(cli.integer("jobs"));
    return options;
}

unsigned
effectiveJobs(const SweepOptions &options)
{
    if (options.jobs < 0)
        dee_fatal("--jobs must be >= 0 (got %d)", options.jobs);
    if (options.jobs == 0)
        return ThreadPool::hardwareConcurrency();
    return static_cast<unsigned>(options.jobs);
}

void
runCells(std::size_t cells, const SweepOptions &options,
         const std::function<void(std::size_t)> &run)
{
    const unsigned jobs = effectiveJobs(options);
    // Telemetry contract (obs/telemetry/telemetry.hh): the sampler
    // only reads the process registry under registryMutex(), so every
    // stretch of code that mutates it below is bracketed by that lock
    // when (and only when) the hub is live. active() is stable across
    // a sweep — the hub starts/stops in the Session ctor/dtor.
    obs::telemetry::Hub &hub = obs::telemetry::Hub::process();
    const bool live = hub.active();
    if (live)
        hub.addCells(cells);
    if (jobs == 1 || cells <= 1) {
        // Serial path: identical to the pre-runner loops, including
        // the absence of runner.* bookkeeping, so --jobs 1 output is
        // byte-for-byte what the tools always produced. Each run(i)
        // publishes straight into the process registry, hence the
        // whole call sits under the registry lock.
        for (std::size_t i = 0; i < cells; ++i) {
            {
                std::unique_lock<std::mutex> reg_lock(
                    hub.registryMutex(), std::defer_lock);
                if (live)
                    reg_lock.lock();
                run(i);
            }
            if (live)
                hub.cellDone();
        }
        return;
    }

    using clock = std::chrono::steady_clock;
    const auto sweep_start = clock::now();

    std::vector<std::unique_ptr<obs::CellSink>> sinks(cells);
    std::vector<double> cell_ms(cells, 0.0);
    std::vector<std::future<void>> futures;
    futures.reserve(cells);

    ThreadPool pool(jobs);

    // Live per-worker utilization for the telemetry sampler: between
    // consecutive ticks, util = 1 - idle/wall from the pool's
    // atomics-backed stats. Registered for the pool's lifetime only.
    std::uint64_t source_id = 0;
    if (live) {
        auto prev_time = clock::now();
        std::vector<double> prev_idle(jobs, 0.0);
        source_id = hub.addSource(
            [&pool, prev_time, prev_idle](
                std::map<std::string, double> &out) mutable {
                const auto now = clock::now();
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(
                        now - prev_time)
                        .count();
                const std::vector<WorkerStats> stats =
                    pool.workerStats();
                for (std::size_t w = 0; w < stats.size(); ++w) {
                    const std::string prefix =
                        "runner.worker." + std::to_string(w) + ".";
                    const double idle_ms =
                        stats[w].idleMs - prev_idle[w];
                    if (wall_ms > 0.0) {
                        double util = 1.0 - idle_ms / wall_ms;
                        if (util < 0.0)
                            util = 0.0;
                        if (util > 1.0)
                            util = 1.0;
                        out[prefix + "util"] = util;
                    }
                    out[prefix + "tasks"] =
                        static_cast<double>(stats[w].tasks);
                    out[prefix + "steals"] =
                        static_cast<double>(stats[w].steals);
                    prev_idle[w] = stats[w].idleMs;
                }
                prev_time = now;
            });
    }

    for (std::size_t i = 0; i < cells; ++i) {
        sinks[i] = std::make_unique<obs::CellSink>();
        futures.push_back(pool.submit([&run, &sinks, &cell_ms, i] {
            const auto cell_start = clock::now();
            obs::IsolationScope scope(*sinks[i]);
            run(i);
            cell_ms[i] = std::chrono::duration<double, std::milli>(
                             clock::now() - cell_start)
                             .count();
        }));
    }

    // Merge strictly in cell-index order on this thread; wait() helps
    // run still-pending cells instead of idling.
    obs::Registry &registry = obs::Registry::process();
    obs::Tracer &tracer = obs::Tracer::process();
    obs::ProfileStore &profiles = obs::ProfileStore::process();
    double merge_ms = 0.0;
    for (std::size_t i = 0; i < cells; ++i) {
        pool.wait(futures[i]);
        const auto merge_start = clock::now();
        {
            // Merge only — pool.wait() above may help run cells, whose
            // own sim markers must not nest under runner.merge.
            const obs::hotspot::HotspotPhase hot_merge(
                "runner", obs::hotspot::Phase::Merge);
            std::unique_lock<std::mutex> reg_lock(hub.registryMutex(),
                                                  std::defer_lock);
            if (live)
                reg_lock.lock();
            sinks[i]->mergeInto(registry, tracer, profiles);
            registry.stat("runner.cell_wall_ms").add(cell_ms[i]);
        }
        merge_ms += std::chrono::duration<double, std::milli>(
                        clock::now() - merge_start)
                        .count();
        if (live)
            hub.cellDone();
        sinks[i].reset();
    }

    {
        std::unique_lock<std::mutex> reg_lock(hub.registryMutex(),
                                              std::defer_lock);
        if (live)
            reg_lock.lock();

        // Re-derive the publish-time scalars from the merged integers
        // so they match what a serial run would have left behind.
        obs::refreshAccountingScalars(registry);
        obs::refreshProfileScalars(registry);
        obs::perf::refreshPerfScalars(registry);

        // Per-worker execution observability: what each worker
        // actually did, how much it stole, how long it sat idle.
        // Snapshotted while the pool is still alive.
        const std::vector<WorkerStats> worker_stats =
            pool.workerStats();
        for (std::size_t w = 0; w < worker_stats.size(); ++w) {
            const std::string prefix =
                "runner.worker." + std::to_string(w) + ".";
            registry.counter(prefix + "tasks") += worker_stats[w].tasks;
            registry.counter(prefix + "steals") +=
                worker_stats[w].steals;
            registry.stat(prefix + "idle_ms")
                .add(worker_stats[w].idleMs);
        }
        registry.counter("runner.external_tasks") +=
            pool.externalTasks();
        registry.stat("runner.merge_ms").add(merge_ms);

        registry.counter("runner.cells") += cells;
        registry.scalar("runner.jobs") = static_cast<double>(jobs);
        registry.scalar("runner.wall_ms") =
            std::chrono::duration<double, std::milli>(clock::now() -
                                                      sweep_start)
                .count();
    }

    // The worker-stats source captures the pool by reference; drop it
    // before the pool leaves scope.
    if (source_id != 0)
        hub.removeSource(source_id);
}

} // namespace dee::runner
