/**
 * @file
 * Work-stealing thread pool for the deterministic parallel runner.
 *
 * N workers each own a deque of tasks. submit() pushes to the calling
 * worker's own deque (LIFO, cache-warm) when called from inside the
 * pool, else round-robins across workers; an idle worker pops from
 * the front of its own deque and, when empty, steals from the back of
 * a sibling's. Determinism is never scheduling-dependent: the sweep
 * layer (sweep.hh) makes results a pure function of the cell, so the
 * pool is free to run cells in any order on any thread.
 *
 * Waiting discipline: a worker that blocks on a future would deadlock
 * a pool whose every thread waits on work only the pool can run, so
 * wait() *helps* — while the future is not ready and the caller is a
 * worker thread, it pops and runs pending tasks (the nested-submit
 * deadlock guard; see tests/test_runner.cc NestedSubmitDoesNotDeadlock).
 *
 * Shutdown: the destructor drains — every task submitted before
 * destruction runs to completion before the threads join, so futures
 * obtained from submit() are always eventually satisfied.
 */

#ifndef DEE_RUNNER_THREAD_POOL_HH
#define DEE_RUNNER_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dee::runner
{

/** Work-stealing pool; see file comment for the discipline. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardwareConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every pending task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** std::thread::hardware_concurrency() clamped to >= 1. */
    static unsigned hardwareConcurrency();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueues @p fn and returns a future for its completion. An
     * exception thrown by @p fn is captured and rethrown from the
     * future's get() (and from wait()).
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Blocks until @p future is ready, running pending pool tasks
     * while waiting when called from a worker thread (never deadlocks
     * on tasks the pool itself must run). Rethrows the task's
     * exception, if any.
     */
    void wait(std::future<void> &future);

    /**
     * Runs one pending task on the calling thread if one is
     * available. @return true when a task ran. Public so external
     * threads can also lend a hand while polling.
     */
    bool runPendingTask();

  private:
    struct Queue
    {
        std::mutex mutex;
        std::deque<std::packaged_task<void()>> tasks;
    };

    void workerLoop(unsigned index);
    bool popTask(std::packaged_task<void()> &task);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex wakeMutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    /** Round-robin cursor for external submits. */
    std::atomic<unsigned> nextQueue_{0};
    /** Tasks submitted but not yet finished (sleep gate). */
    std::atomic<std::size_t> pending_{0};
};

} // namespace dee::runner

#endif // DEE_RUNNER_THREAD_POOL_HH
