/**
 * @file
 * Work-stealing thread pool for the deterministic parallel runner.
 *
 * N workers each own a deque of tasks. submit() pushes to the calling
 * worker's own deque (LIFO, cache-warm) when called from inside the
 * pool, else round-robins across workers; an idle worker pops from
 * the front of its own deque and, when empty, steals from the back of
 * a sibling's. Determinism is never scheduling-dependent: the sweep
 * layer (sweep.hh) makes results a pure function of the cell, so the
 * pool is free to run cells in any order on any thread.
 *
 * Waiting discipline: a worker that blocks on a future would deadlock
 * a pool whose every thread waits on work only the pool can run, so
 * wait() *helps* — while the future is not ready and the caller is a
 * worker thread, it pops and runs pending tasks (the nested-submit
 * deadlock guard; see tests/test_runner.cc NestedSubmitDoesNotDeadlock).
 *
 * Shutdown: the destructor drains — every task submitted before
 * destruction runs to completion before the threads join, so futures
 * obtained from submit() are always eventually satisfied.
 */

#ifndef DEE_RUNNER_THREAD_POOL_HH
#define DEE_RUNNER_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dee::runner
{

/**
 * Per-worker execution observability, snapshotted by workerStats().
 * "Steals" are tasks a worker popped from a sibling's deque (or that
 * an external helper popped from any deque); idle time is how long the
 * worker sat in its wait loop with nothing runnable.
 */
struct WorkerStats
{
    std::uint64_t tasks = 0;  ///< Tasks this worker executed.
    std::uint64_t steals = 0; ///< ... of which were stolen.
    double idleMs = 0.0;      ///< Wall ms spent parked, waiting.
};

/** Work-stealing pool; see file comment for the discipline. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardwareConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every pending task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** std::thread::hardware_concurrency() clamped to >= 1. */
    static unsigned hardwareConcurrency();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueues @p fn and returns a future for its completion. An
     * exception thrown by @p fn is captured and rethrown from the
     * future's get() (and from wait()).
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Blocks until @p future is ready, running pending pool tasks
     * while waiting when called from a worker thread (never deadlocks
     * on tasks the pool itself must run). Rethrows the task's
     * exception, if any.
     */
    void wait(std::future<void> &future);

    /**
     * Runs one pending task on the calling thread if one is
     * available. @return true when a task ran. Public so external
     * threads can also lend a hand while polling.
     */
    bool runPendingTask();

    /**
     * Per-worker counters accumulated so far (index == worker index).
     * Safe to call at any time; totals are exact once the work being
     * measured has completed (e.g. after wait() returned).
     */
    std::vector<WorkerStats> workerStats() const;

    /** Tasks run by non-worker threads helping via runPendingTask()
     *  or wait() (they have no worker slot of their own). */
    std::uint64_t externalTasks() const
    {
        return externalTasks_.load(std::memory_order_relaxed);
    }

  private:
    struct Queue
    {
        std::mutex mutex;
        std::deque<std::packaged_task<void()>> tasks;
    };

    /** Cache-line-padded per-worker tallies (hot-path increments). */
    struct WorkerTally
    {
        std::atomic<std::uint64_t> tasks{0};
        std::atomic<std::uint64_t> steals{0};
        std::atomic<std::uint64_t> idleNs{0};
        char pad[64 - 3 * sizeof(std::atomic<std::uint64_t>)];
    };

    void workerLoop(unsigned index);
    bool popTask(std::packaged_task<void()> &task);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::unique_ptr<WorkerTally>> tallies_;
    std::atomic<std::uint64_t> externalTasks_{0};
    std::vector<std::thread> workers_;

    std::mutex wakeMutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    /** Round-robin cursor for external submits. */
    std::atomic<unsigned> nextQueue_{0};
    /** Tasks submitted but not yet finished (sleep gate). */
    std::atomic<std::size_t> pending_{0};
};

} // namespace dee::runner

#endif // DEE_RUNNER_THREAD_POOL_HH
