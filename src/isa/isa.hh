/**
 * @file
 * A small MIPS-R3000-like register ISA.
 *
 * The paper's evaluation assumes "the MIPS R3000 instruction set ... but
 * with single cycle (unit latency) instruction execution" (Section 5.1).
 * Only the dependence and control-flow structure of the ISA matters to the
 * ILP models, so this subset keeps the R3000 shape: 32 general registers
 * with r0 hard-wired to zero, three-address ALU ops, immediate forms,
 * loads/stores with base+displacement addressing, two-source conditional
 * branches, unconditional jumps, and a halt pseudo-op.
 *
 * Programs are containers of basic blocks; control transfers name target
 * blocks rather than raw addresses, which gives the control-flow analyses
 * (src/cfg) an exact CFG for free.
 */

#ifndef DEE_ISA_ISA_HH
#define DEE_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dee
{

/** Architectural register index; r0 reads as zero and ignores writes. */
using RegId = std::uint8_t;

/** Number of architectural registers (MIPS-like). */
constexpr RegId kNumRegs = 32;

/** Register that always reads zero. */
constexpr RegId kZeroReg = 0;

/** Identifies a basic block within a Program. */
using BlockId = std::uint32_t;

/** Identifies a static instruction within a Program (flattened order). */
using StaticId = std::uint32_t;

/** Marker for "no register operand". */
constexpr RegId kNoReg = 0xff;

/** Instruction operations. */
enum class Opcode : std::uint8_t
{
    // Three-address register ALU.
    Add, Sub, Mul, Div, And, Or, Xor, Sll, Srl, Slt,
    // Register-immediate ALU.
    AddI, AndI, OrI, XorI, SltI, ShlI, ShrI,
    // rd = imm.
    LoadImm,
    // rd = mem[rs1 + imm].
    Load,
    // mem[rs1 + imm] = rs2.
    Store,
    // Conditional branches on two registers; taken -> target block.
    BranchEq, BranchNe, BranchLt, BranchGe,
    // Unconditional transfer to target block.
    Jump,
    // Stop execution.
    Halt,
    // No operation.
    Nop,
};

/** Broad classes used by the timing models and statistics. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    Load,
    Store,
    CondBranch,
    Jump,
    Halt,
    Nop,
};

/** Returns the class of an opcode. */
constexpr OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::Load:
        return OpClass::Load;
      case Opcode::Store:
        return OpClass::Store;
      case Opcode::BranchEq:
      case Opcode::BranchNe:
      case Opcode::BranchLt:
      case Opcode::BranchGe:
        return OpClass::CondBranch;
      case Opcode::Jump:
        return OpClass::Jump;
      case Opcode::Halt:
        return OpClass::Halt;
      case Opcode::Nop:
        return OpClass::Nop;
      default:
        return OpClass::IntAlu;
    }
}

/** True for the conditional-branch opcodes. */
bool isCondBranch(Opcode op);

/** True for any control transfer (conditional branch or jump). */
bool isControl(Opcode op);

/** Mnemonic, e.g. "add". */
const char *opcodeName(Opcode op);

/**
 * One static instruction.
 *
 * Operand usage by class:
 *  - register ALU:   rd <- rs1 op rs2
 *  - immediate ALU:  rd <- rs1 op imm
 *  - LoadImm:        rd <- imm
 *  - Load:           rd <- mem[rs1 + imm]
 *  - Store:          mem[rs1 + imm] <- rs2
 *  - branches:       compare rs1, rs2; taken -> block 'target'
 *  - Jump:           -> block 'target'
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId rd = kNoReg;
    RegId rs1 = kNoReg;
    RegId rs2 = kNoReg;
    std::int64_t imm = 0;
    BlockId target = 0;

    /** Destination register, or kNoReg if none. */
    RegId dest() const;

    /** Source registers actually read (r0 reads are still returned). */
    std::vector<RegId> sources() const;
};

/** Straight-line code ending implicitly (fallthrough) or in control. */
struct BasicBlock
{
    std::vector<Instruction> instrs;

    /**
     * True if the last instruction transfers control (branch/jump/halt).
     * Blocks without a terminator fall through to the next block id.
     */
    bool hasTerminator() const;
};

/**
 * A whole program: basic blocks, entry at block 0.
 *
 * Flattened static ids number instructions in block order; they index the
 * per-static-instruction structures (branch predictors, IQ rows, CFG).
 */
class Program
{
  public:
    Program() = default;

    /** Appends a block and returns its id. */
    BlockId addBlock(BasicBlock block);

    std::size_t numBlocks() const { return blocks_.size(); }
    const BasicBlock &block(BlockId id) const;
    BasicBlock &block(BlockId id);

    /** Total static instruction count across all blocks. */
    std::size_t numInstrs() const;

    /** Static id of instruction `index` in block `id`. */
    StaticId staticId(BlockId id, std::size_t index) const;

    /** Inverse of staticId(). */
    std::pair<BlockId, std::size_t> locate(StaticId sid) const;

    /** Instruction by static id. */
    const Instruction &instr(StaticId sid) const;

    /**
     * Validates structural invariants: targets in range, a terminator on
     * the last block, register ids legal. Fatal on violation (these are
     * builder/user errors, not internal bugs).
     */
    void validate() const;

    /** Multi-line disassembly of the whole program. */
    std::string disassemble() const;

  private:
    void rebuildIndex() const;

    std::vector<BasicBlock> blocks_;
    // Lazy flattened index: first static id of each block.
    mutable std::vector<StaticId> blockStart_;
    mutable bool indexDirty_ = true;
};

/** Disassembles one instruction. */
std::string disassemble(const Instruction &inst);

} // namespace dee

#endif // DEE_ISA_ISA_HH
