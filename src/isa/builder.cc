#include "isa/builder.hh"

#include "common/logging.hh"

namespace dee
{

BlockId
ProgramBuilder::newBlock()
{
    const BlockId id = program_.addBlock(BasicBlock{});
    current_ = id;
    hasBlock_ = true;
    return id;
}

void
ProgramBuilder::switchTo(BlockId id)
{
    dee_assert(id < program_.numBlocks(), "switchTo unknown block ", id);
    current_ = id;
    hasBlock_ = true;
}

void
ProgramBuilder::emit(Instruction inst)
{
    dee_assert(hasBlock_, "emit before any newBlock()");
    program_.block(current_).instrs.push_back(inst);
}

void
ProgramBuilder::alu(Opcode op, RegId rd, RegId rs1, RegId rs2)
{
    emit(Instruction{op, rd, rs1, rs2, 0, 0});
}

void
ProgramBuilder::aluImm(Opcode op, RegId rd, RegId rs1, std::int64_t imm)
{
    emit(Instruction{op, rd, rs1, kNoReg, imm, 0});
}

void
ProgramBuilder::loadImm(RegId rd, std::int64_t imm)
{
    emit(Instruction{Opcode::LoadImm, rd, kNoReg, kNoReg, imm, 0});
}

void
ProgramBuilder::load(RegId rd, RegId base, std::int64_t disp)
{
    emit(Instruction{Opcode::Load, rd, base, kNoReg, disp, 0});
}

void
ProgramBuilder::store(RegId value, RegId base, std::int64_t disp)
{
    emit(Instruction{Opcode::Store, kNoReg, base, value, disp, 0});
}

void
ProgramBuilder::branch(Opcode op, RegId rs1, RegId rs2, BlockId target)
{
    dee_assert(isCondBranch(op), "branch() needs a branch opcode");
    emit(Instruction{op, kNoReg, rs1, rs2, 0, target});
}

void
ProgramBuilder::jump(BlockId target)
{
    emit(Instruction{Opcode::Jump, kNoReg, kNoReg, kNoReg, 0, target});
}

void
ProgramBuilder::halt()
{
    emit(Instruction{Opcode::Halt, kNoReg, kNoReg, kNoReg, 0, 0});
}

void
ProgramBuilder::nop()
{
    emit(Instruction{Opcode::Nop, kNoReg, kNoReg, kNoReg, 0, 0});
}

Program
ProgramBuilder::build()
{
    program_.validate();
    return std::move(program_);
}

Program
ProgramBuilder::buildUnchecked()
{
    return std::move(program_);
}

} // namespace dee
