/**
 * @file
 * Text assembler for the repo ISA.
 *
 * Parses the same syntax the disassembler emits, so
 * parseAssembly(program.disassemble()) round-trips exactly:
 *
 *     B0:
 *         li r1, 5
 *         addi r2, r1, 7
 *         lw r3, 16(r2)
 *         sw r3, 24(r2)
 *         blt r1, r2, B1
 *         j B2
 *     B1:
 *         halt
 *
 * Rules: blocks must be declared in order starting at B0; `#` and `;`
 * start comments; blank lines are ignored; all parse errors are fatal
 * with a line number (user errors, not bugs).
 */

#ifndef DEE_ISA_ASSEMBLER_HH
#define DEE_ISA_ASSEMBLER_HH

#include <string>

#include "isa/isa.hh"

namespace dee
{

/** Assembles source text into a validated Program (fatal on errors). */
Program parseAssembly(const std::string &source);

/** Assembles a file's contents (fatal on I/O or parse errors). */
Program parseAssemblyFile(const std::string &path);

/**
 * Assembles without Program::validate(), so structurally broken
 * programs (out-of-range branch targets, missing terminators) come
 * back intact for the static verifier to diagnose. Syntax errors are
 * still fatal — there is no program to return for those.
 */
Program parseAssemblyUnchecked(const std::string &source);

/** File variant of parseAssemblyUnchecked (fatal on I/O errors). */
Program parseAssemblyFileUnchecked(const std::string &path);

} // namespace dee

#endif // DEE_ISA_ASSEMBLER_HH
