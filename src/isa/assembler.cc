#include "isa/assembler.hh"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/builder.hh"

namespace dee
{

namespace
{

/** Cursor over one source line with fatal diagnostics. */
class LineParser
{
  public:
    LineParser(const std::string &text, int line_no)
        : text_(text), lineNo_(line_no)
    {
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t'))
            ++pos_;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    [[noreturn]] void
    fail(const std::string &what)
    {
        dee_fatal("asm line ", lineNo_, ": ", what, " in '", text_, "'");
    }

    /** Next identifier-ish token ([A-Za-z0-9_]+). */
    std::string
    word()
    {
        skipSpace();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_'))
            ++pos_;
        if (pos_ == start)
            fail("expected a token");
        return text_.substr(start, pos_ - start);
    }

    void
    expect(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    RegId
    reg()
    {
        const std::string w = word();
        if (w.size() < 2 || (w[0] != 'r' && w[0] != 'R'))
            fail("expected a register, got '" + w + "'");
        const long v = std::strtol(w.c_str() + 1, nullptr, 10);
        if (v < 0 || v >= kNumRegs)
            fail("register out of range: '" + w + "'");
        return static_cast<RegId>(v);
    }

    std::int64_t
    immediate()
    {
        skipSpace();
        std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start ||
            (pos_ == start + 1 && !std::isdigit(static_cast<unsigned char>(
                                      text_[start]))))
            fail("expected an immediate");
        return std::strtoll(text_.substr(start, pos_ - start).c_str(),
                            nullptr, 10);
    }

    BlockId
    blockRef()
    {
        const std::string w = word();
        if (w.size() < 2 || (w[0] != 'B' && w[0] != 'b'))
            fail("expected a block reference like B3, got '" + w + "'");
        const long v = std::strtol(w.c_str() + 1, nullptr, 10);
        if (v < 0)
            fail("bad block number in '" + w + "'");
        return static_cast<BlockId>(v);
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    int lineNo_;
};

const std::map<std::string, Opcode> &
mnemonics()
{
    static const std::map<std::string, Opcode> table = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"div", Opcode::Div},
        {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor},   {"sll", Opcode::Sll},
        {"srl", Opcode::Srl},   {"slt", Opcode::Slt},
        {"addi", Opcode::AddI}, {"andi", Opcode::AndI},
        {"ori", Opcode::OrI},   {"xori", Opcode::XorI},
        {"slti", Opcode::SltI}, {"shli", Opcode::ShlI},
        {"shri", Opcode::ShrI}, {"li", Opcode::LoadImm},
        {"lw", Opcode::Load},   {"sw", Opcode::Store},
        {"beq", Opcode::BranchEq}, {"bne", Opcode::BranchNe},
        {"blt", Opcode::BranchLt}, {"bge", Opcode::BranchGe},
        {"j", Opcode::Jump},    {"halt", Opcode::Halt},
        {"nop", Opcode::Nop},
    };
    return table;
}

} // namespace

namespace
{

Program parseAssemblyImpl(const std::string &source, bool validate);

} // namespace

Program
parseAssembly(const std::string &source)
{
    return parseAssemblyImpl(source, true);
}

Program
parseAssemblyUnchecked(const std::string &source)
{
    return parseAssemblyImpl(source, false);
}

namespace
{

Program
parseAssemblyImpl(const std::string &source, bool validate)
{
    ProgramBuilder pb;
    int declared_blocks = 0;
    bool any_block = false;

    std::istringstream stream(source);
    std::string raw;
    int line_no = 0;
    while (std::getline(stream, raw)) {
        ++line_no;
        // Strip comments.
        std::string line = raw;
        for (char marker : {'#', ';'}) {
            const auto pos = line.find(marker);
            if (pos != std::string::npos)
                line = line.substr(0, pos);
        }
        LineParser lp(line, line_no);
        if (lp.atEnd())
            continue;

        // Block label?
        {
            std::string trimmed = line;
            const auto colon = trimmed.find(':');
            if (colon != std::string::npos) {
                LineParser label(trimmed, line_no);
                const BlockId id = label.blockRef();
                label.expect(':');
                if (!label.atEnd())
                    label.fail("trailing text after block label");
                if (static_cast<int>(id) != declared_blocks)
                    label.fail("blocks must be declared in order; "
                               "expected B" +
                               std::to_string(declared_blocks));
                pb.newBlock();
                ++declared_blocks;
                any_block = true;
                continue;
            }
        }
        if (!any_block)
            lp.fail("instruction before the first block label");

        const std::string mnem = lp.word();
        auto it = mnemonics().find(mnem);
        if (it == mnemonics().end())
            lp.fail("unknown mnemonic '" + mnem + "'");
        const Opcode op = it->second;

        switch (opClass(op)) {
          case OpClass::IntAlu: {
            if (op == Opcode::LoadImm) {
                const RegId rd = lp.reg();
                lp.expect(',');
                pb.loadImm(rd, lp.immediate());
                break;
            }
            const RegId rd = lp.reg();
            lp.expect(',');
            const RegId rs1 = lp.reg();
            lp.expect(',');
            // Register or immediate third operand.
            const bool reg_form =
                (op == Opcode::Add || op == Opcode::Sub ||
                 op == Opcode::Mul || op == Opcode::Div ||
                 op == Opcode::And || op == Opcode::Or ||
                 op == Opcode::Xor || op == Opcode::Sll ||
                 op == Opcode::Srl || op == Opcode::Slt);
            if (reg_form)
                pb.alu(op, rd, rs1, lp.reg());
            else
                pb.aluImm(op, rd, rs1, lp.immediate());
            break;
          }
          case OpClass::Load: {
            const RegId rd = lp.reg();
            lp.expect(',');
            const std::int64_t disp = lp.immediate();
            lp.expect('(');
            const RegId base = lp.reg();
            lp.expect(')');
            pb.load(rd, base, disp);
            break;
          }
          case OpClass::Store: {
            const RegId value = lp.reg();
            lp.expect(',');
            const std::int64_t disp = lp.immediate();
            lp.expect('(');
            const RegId base = lp.reg();
            lp.expect(')');
            pb.store(value, base, disp);
            break;
          }
          case OpClass::CondBranch: {
            const RegId rs1 = lp.reg();
            lp.expect(',');
            const RegId rs2 = lp.reg();
            lp.expect(',');
            pb.branch(op, rs1, rs2, lp.blockRef());
            break;
          }
          case OpClass::Jump:
            pb.jump(lp.blockRef());
            break;
          case OpClass::Halt:
            pb.halt();
            break;
          case OpClass::Nop:
            pb.nop();
            break;
        }
        if (!lp.atEnd())
            lp.fail("trailing text");
    }
    if (!any_block)
        dee_fatal("assembly source contains no blocks");
    return validate ? pb.build() : pb.buildUnchecked();
}

} // namespace

Program
parseAssemblyFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        dee_fatal("cannot open assembly file '", path, "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parseAssembly(buffer.str());
}

Program
parseAssemblyFileUnchecked(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        dee_fatal("cannot open assembly file '", path, "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parseAssemblyUnchecked(buffer.str());
}

} // namespace dee
