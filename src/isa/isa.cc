#include "isa/isa.hh"

#include <sstream>

#include "common/logging.hh"

namespace dee
{

bool
isCondBranch(Opcode op)
{
    return opClass(op) == OpClass::CondBranch;
}

bool
isControl(Opcode op)
{
    const OpClass c = opClass(op);
    return c == OpClass::CondBranch || c == OpClass::Jump ||
           c == OpClass::Halt;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Slt: return "slt";
      case Opcode::AddI: return "addi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::SltI: return "slti";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::LoadImm: return "li";
      case Opcode::Load: return "lw";
      case Opcode::Store: return "sw";
      case Opcode::BranchEq: return "beq";
      case Opcode::BranchNe: return "bne";
      case Opcode::BranchLt: return "blt";
      case Opcode::BranchGe: return "bge";
      case Opcode::Jump: return "j";
      case Opcode::Halt: return "halt";
      case Opcode::Nop: return "nop";
    }
    return "???";
}

RegId
Instruction::dest() const
{
    switch (opClass(op)) {
      case OpClass::IntAlu:
      case OpClass::Load:
        return rd == kZeroReg ? kNoReg : rd;
      default:
        return kNoReg;
    }
}

std::vector<RegId>
Instruction::sources() const
{
    std::vector<RegId> srcs;
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Sll: case Opcode::Srl:
      case Opcode::Slt:
        srcs = {rs1, rs2};
        break;
      case Opcode::AddI: case Opcode::AndI: case Opcode::OrI:
      case Opcode::XorI: case Opcode::SltI: case Opcode::ShlI:
      case Opcode::ShrI:
        srcs = {rs1};
        break;
      case Opcode::LoadImm:
        break;
      case Opcode::Load:
        srcs = {rs1};
        break;
      case Opcode::Store:
        srcs = {rs1, rs2};
        break;
      case Opcode::BranchEq: case Opcode::BranchNe:
      case Opcode::BranchLt: case Opcode::BranchGe:
        srcs = {rs1, rs2};
        break;
      case Opcode::Jump:
      case Opcode::Halt:
      case Opcode::Nop:
        break;
    }
    // r0 is constant zero: reading it creates no dependence.
    std::vector<RegId> real;
    for (RegId r : srcs)
        if (r != kZeroReg && r != kNoReg)
            real.push_back(r);
    return real;
}

bool
BasicBlock::hasTerminator() const
{
    return !instrs.empty() && isControl(instrs.back().op);
}

BlockId
Program::addBlock(BasicBlock block)
{
    blocks_.push_back(std::move(block));
    indexDirty_ = true;
    return static_cast<BlockId>(blocks_.size() - 1);
}

const BasicBlock &
Program::block(BlockId id) const
{
    dee_assert(id < blocks_.size(), "block ", id, " out of range");
    return blocks_[id];
}

BasicBlock &
Program::block(BlockId id)
{
    dee_assert(id < blocks_.size(), "block ", id, " out of range");
    indexDirty_ = true;
    return blocks_[id];
}

std::size_t
Program::numInstrs() const
{
    rebuildIndex();
    if (blocks_.empty())
        return 0;
    return blockStart_.back() + blocks_.back().instrs.size();
}

void
Program::rebuildIndex() const
{
    if (!indexDirty_)
        return;
    blockStart_.clear();
    blockStart_.reserve(blocks_.size());
    StaticId next = 0;
    for (const auto &b : blocks_) {
        blockStart_.push_back(next);
        next += static_cast<StaticId>(b.instrs.size());
    }
    indexDirty_ = false;
}

StaticId
Program::staticId(BlockId id, std::size_t index) const
{
    rebuildIndex();
    dee_assert(id < blocks_.size(), "block ", id, " out of range");
    dee_assert(index < blocks_[id].instrs.size(), "instr index ", index,
               " out of range in block ", id);
    return blockStart_[id] + static_cast<StaticId>(index);
}

std::pair<BlockId, std::size_t>
Program::locate(StaticId sid) const
{
    rebuildIndex();
    dee_assert(sid < numInstrs(), "static id ", sid, " out of range");
    // Binary search for the containing block.
    std::size_t lo = 0;
    std::size_t hi = blocks_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi + 1) / 2;
        if (blockStart_[mid] <= sid)
            lo = mid;
        else
            hi = mid - 1;
    }
    return {static_cast<BlockId>(lo), sid - blockStart_[lo]};
}

const Instruction &
Program::instr(StaticId sid) const
{
    const auto [bid, idx] = locate(sid);
    return blocks_[bid].instrs[idx];
}

void
Program::validate() const
{
    if (blocks_.empty())
        dee_fatal("program has no blocks");
    for (BlockId b = 0; b < blocks_.size(); ++b) {
        const auto &blk = blocks_[b];
        for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instruction &inst = blk.instrs[i];
            if (isControl(inst.op) && i + 1 != blk.instrs.size())
                dee_fatal("block ", b, ": control op '",
                          opcodeName(inst.op), "' not at block end");
            auto check_reg = [&](RegId r, const char *which) {
                if (r != kNoReg && r >= kNumRegs)
                    dee_fatal("block ", b, " instr ", i, ": ", which,
                              " register ", int{r}, " out of range");
            };
            check_reg(inst.rd, "dest");
            check_reg(inst.rs1, "src1");
            check_reg(inst.rs2, "src2");
            if ((isCondBranch(inst.op) || inst.op == Opcode::Jump) &&
                inst.target >= blocks_.size()) {
                dee_fatal("block ", b, ": target block ", inst.target,
                          " out of range");
            }
        }
        // A fallthrough off the last block would run off the program.
        if (b + 1 == blocks_.size() && !blk.hasTerminator())
            dee_fatal("last block ", b, " must end in halt/jump/branch");
        // Conditional fallthrough from the final instruction of the last
        // block is checked above; interior blocks may fall through.
    }
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream oss;
    oss << opcodeName(inst.op);
    auto reg = [](RegId r) { return "r" + std::to_string(int{r}); };
    switch (opClass(inst.op)) {
      case OpClass::IntAlu:
        if (inst.op == Opcode::LoadImm) {
            oss << " " << reg(inst.rd) << ", " << inst.imm;
        } else if (inst.rs2 != kNoReg) {
            oss << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
                << reg(inst.rs2);
        } else {
            oss << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
                << inst.imm;
        }
        break;
      case OpClass::Load:
        oss << " " << reg(inst.rd) << ", " << inst.imm << "("
            << reg(inst.rs1) << ")";
        break;
      case OpClass::Store:
        oss << " " << reg(inst.rs2) << ", " << inst.imm << "("
            << reg(inst.rs1) << ")";
        break;
      case OpClass::CondBranch:
        oss << " " << reg(inst.rs1) << ", " << reg(inst.rs2) << ", B"
            << inst.target;
        break;
      case OpClass::Jump:
        oss << " B" << inst.target;
        break;
      case OpClass::Halt:
      case OpClass::Nop:
        break;
    }
    return oss.str();
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (BlockId b = 0; b < blocks_.size(); ++b) {
        oss << "B" << b << ":\n";
        for (const auto &inst : blocks_[b].instrs)
            oss << "    " << dee::disassemble(inst) << "\n";
    }
    return oss.str();
}

} // namespace dee
