/**
 * @file
 * Fluent construction of Programs.
 *
 * The builder creates labeled blocks up front (so forward branch targets
 * can be named before they are filled in), appends instructions to a
 * current block, and validates the finished program.
 */

#ifndef DEE_ISA_BUILDER_HH
#define DEE_ISA_BUILDER_HH

#include <cstdint>

#include "isa/isa.hh"

namespace dee
{

/** Builds a Program block by block. */
class ProgramBuilder
{
  public:
    ProgramBuilder() = default;

    /** Reserves a new empty block; returns its id. */
    BlockId newBlock();

    /** Directs subsequent emits into the given block. */
    void switchTo(BlockId id);

    /** Block currently being emitted into. */
    BlockId current() const { return current_; }

    // --- Emission helpers (all append to the current block) -------------

    void alu(Opcode op, RegId rd, RegId rs1, RegId rs2);
    void aluImm(Opcode op, RegId rd, RegId rs1, std::int64_t imm);
    void loadImm(RegId rd, std::int64_t imm);
    void load(RegId rd, RegId base, std::int64_t disp);
    void store(RegId value, RegId base, std::int64_t disp);
    void branch(Opcode op, RegId rs1, RegId rs2, BlockId target);
    void jump(BlockId target);
    void halt();
    void nop();

    /** Raw append. */
    void emit(Instruction inst);

    /** Validates and returns the finished program. */
    Program build();

    /**
     * Returns the program as emitted, without validation. For tools
     * that diagnose broken programs (the static verifier) rather than
     * execute them; everything else wants build().
     */
    Program buildUnchecked();

  private:
    Program program_;
    BlockId current_ = 0;
    bool hasBlock_ = false;
};

} // namespace dee

#endif // DEE_ISA_BUILDER_HH
