/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic convention.
 *
 * panic(): a condition that should never happen regardless of user input,
 *          i.e. an internal bug. Calls std::abort().
 * fatal(): the run cannot continue because of a user-level problem (bad
 *          configuration, invalid arguments). Calls std::exit(1).
 * warn()/inform(): non-fatal status messages to stderr.
 *
 * Verbosity is controlled by the DEE_LOG_LEVEL environment variable so
 * binaries that emit machine-readable streams (--json / --trace-out
 * runs) can keep stderr clean:
 *   DEE_LOG_LEVEL=info   (default) everything prints
 *   DEE_LOG_LEVEL=warn   inform() suppressed
 *   DEE_LOG_LEVEL=error  inform() and warn() suppressed
 * panic() and fatal() always print. Unknown values fall back to info.
 */

#ifndef DEE_COMMON_LOGGING_HH
#define DEE_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace dee
{

/** Minimum severity that still prints; see file comment. */
enum class LogLevel
{
    Info = 0,
    Warn = 1,
    Error = 2,
};

/** Current level (reads DEE_LOG_LEVEL once, on first use). */
LogLevel logLevel();

/** Overrides the environment-derived level (tests, embedding tools). */
void setLogLevel(LogLevel level);

namespace detail
{

/** Formats "<prefix>: <msg> (at <file>:<line>)" and writes it to stderr. */
void logMessage(const char *prefix, const std::string &msg,
                const char *file, int line);

/** Appends each argument to an ostringstream; the printf-free formatter. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg, const char *file, int line);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace dee

/** Internal invariant violated: report and abort. */
#define dee_panic(...) \
    ::dee::detail::panicImpl(::dee::detail::concat(__VA_ARGS__), __FILE__, \
                             __LINE__)

/** Unrecoverable user-level error: report and exit(1). */
#define dee_fatal(...) \
    ::dee::detail::fatalImpl(::dee::detail::concat(__VA_ARGS__), __FILE__, \
                             __LINE__)

/** Suspicious but survivable condition. */
#define dee_warn(...) \
    ::dee::detail::warnImpl(::dee::detail::concat(__VA_ARGS__), __FILE__, \
                            __LINE__)

/** Plain status message. */
#define dee_inform(...) \
    ::dee::detail::informImpl(::dee::detail::concat(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define dee_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            dee_panic("assertion '", #cond, "' failed. ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // DEE_COMMON_LOGGING_HH
