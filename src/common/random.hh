/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (workload generation, synthetic
 * branch behaviour) draw from Rng so that every experiment is exactly
 * reproducible from its seed. The generator is xoshiro256** seeded via
 * SplitMix64, which is fast, high-quality and implementation-defined-free
 * (unlike std::default_random_engine).
 */

#ifndef DEE_COMMON_RANDOM_HH
#define DEE_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace dee
{

/** SplitMix64 step; used to expand a single seed into generator state. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** deterministic PRNG with convenience distributions.
 *
 * Satisfies UniformRandomBitGenerator, so it can also feed <random>
 * distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seeds the four words of state from a single value via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        dee_assert(bound > 0, "Rng::below(0)");
        // Lemire's nearly-divisionless bounded generation (biased by at
        // most 2^-64, irrelevant for simulation workloads).
        const unsigned __int128 m =
            static_cast<unsigned __int128>((*this)()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        dee_assert(lo <= hi, "Rng::range with lo > hi");
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     *
     * Returns 1 + Geometric(1/mean) truncated sampling, handy for run
     * lengths such as basic-block sizes.
     */
    std::uint64_t
    geometric(double mean)
    {
        dee_assert(mean >= 1.0, "geometric mean must be >= 1");
        if (mean == 1.0)
            return 1;
        const double p = 1.0 / mean;
        std::uint64_t n = 1;
        // Expected iterations: mean. Cap to keep pathological draws finite.
        while (n < 100000 && !chance(p))
            ++n;
        return n;
    }

    /** Forks an independent stream (for per-component determinism). */
    Rng
    fork()
    {
        return Rng((*this)() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dee

#endif // DEE_COMMON_RANDOM_HH
