/**
 * @file
 * ASCII table rendering for bench and example output.
 *
 * Every figure/table reproduction prints its data through this class so
 * that EXPERIMENTS.md rows can be pasted directly from the binaries.
 */

#ifndef DEE_COMMON_TABLE_HH
#define DEE_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace dee
{

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with the given precision. */
    static std::string fmt(double value, int precision = 2);

    /** Formats a fraction as a percentage, e.g. 0.123 -> "12.3%".
     *  The one place percentage rendering lives — stat render()
     *  methods route through here rather than hand-rolling "* 100". */
    static std::string fmtPercent(double fraction, int precision = 1);

    std::size_t numRows() const { return rows_.size(); }

    /** Renders with a separator line under the header. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dee

#endif // DEE_COMMON_TABLE_HH
