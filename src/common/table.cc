#include "common/table.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace dee
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    dee_assert(!headers_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    dee_assert(cells.size() == headers_.size(),
               "row arity ", cells.size(), " != header arity ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::fmtPercent(double fraction, int precision)
{
    return fmt(100.0 * fraction, precision) + "%";
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    oss << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

} // namespace dee
