#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace dee
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (logging_)
        samples_.push_back(x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (const std::vector<double> *log = other.sampleLog()) {
        dee_assert(log->size() == other.count_,
                   "RunningStat sample log out of sync: ", log->size(),
                   " samples for count ", other.count_);
        for (const double x : *log)
            add(x);
        return;
    }
    // Moment combination (Chan et al.); exact for count/sum/min/max,
    // mathematically correct but not replay-bit-identical for
    // mean/variance.
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ += delta * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (logging_)
        dee_fatal("cannot moment-merge into a sample-logging "
                  "RunningStat (the log would go stale)");
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
RunningStat::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geometricMean(const std::vector<double> &xs)
{
    dee_assert(!xs.empty(), "geometricMean of empty sample");
    double log_sum = 0.0;
    for (double x : xs) {
        dee_assert(x > 0.0, "geometricMean requires positive samples");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
harmonicMean(const std::vector<double> &xs)
{
    dee_assert(!xs.empty(), "harmonicMean of empty sample");
    double recip_sum = 0.0;
    for (double x : xs) {
        dee_assert(x > 0.0, "harmonicMean requires positive samples");
        recip_sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / recip_sum;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    dee_assert(hi > lo, "Histogram needs hi > lo");
    dee_assert(buckets > 0, "Histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
    }
}

void
Histogram::add(double x, std::uint64_t weight)
{
    if (weight == 0)
        return;
    total_ += weight - 1; // add(x) below contributes the final unit
    if (x < lo_) {
        underflow_ += weight - 1;
    } else if (x >= hi_) {
        overflow_ += weight - 1;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
        counts_[idx] += weight - 1;
    }
    add(x);
}

void
Histogram::merge(const Histogram &other)
{
    dee_assert(lo_ == other.lo_ && hi_ == other.hi_ &&
                   counts_.size() == other.counts_.size(),
               "Histogram::merge geometry mismatch: [", lo_, ",", hi_,
               ")x", counts_.size(), " vs [", other.lo_, ",", other.hi_,
               ")x", other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double
Histogram::percentile(double p) const
{
    dee_assert(p >= 0.0 && p <= 1.0, "percentile needs p in [0, 1]");
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double target = p * static_cast<double>(total_);
    double seen = static_cast<double>(underflow_);
    if (target <= seen)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double in_bucket = static_cast<double>(counts_[i]);
        if (target <= seen + in_bucket && in_bucket > 0.0) {
            double frac = (target - seen) / in_bucket;
            frac = std::clamp(frac, 0.0, 1.0);
            return bucketLo(i) + frac * width_;
        }
        seen += in_bucket;
    }
    // Residue: the target falls in the overflow mass (or rounding left
    // us past every bucket) — clamp to the upper bound.
    return hi_;
}

double
Histogram::fraction(std::size_t i) const
{
    dee_assert(i < counts_.size(), "Histogram bucket out of range");
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::string
Histogram::render(const std::string &label) const
{
    Table table({"bucket", "count", "fraction"});
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::string bucket = "[";
        bucket += Table::fmt(bucketLo(i));
        bucket += ", ";
        bucket += Table::fmt(bucketLo(i) + width_);
        bucket += ")";
        table.addRow({std::move(bucket), std::to_string(counts_[i]),
                      Table::fmtPercent(fraction(i))});
    }
    if (underflow_ > 0)
        table.addRow({"underflow", std::to_string(underflow_), ""});
    if (overflow_ > 0)
        table.addRow({"overflow", std::to_string(overflow_), ""});
    return label + " (n=" + std::to_string(total_) + ")\n" +
           table.render();
}

} // namespace dee
