/**
 * @file
 * Minimal command-line flag parsing for benches and examples.
 *
 * Supports "--name value" and "--name=value" forms plus "--help". All
 * flags are declared with defaults before parse(); unknown flags are a
 * fatal user error.
 */

#ifndef DEE_COMMON_CLI_HH
#define DEE_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dee
{

/** Declarative flag set: declare, parse, query. */
class Cli
{
  public:
    explicit Cli(std::string program_description);

    /** Declares a flag with a default value and help text. */
    void flag(const std::string &name, const std::string &default_value,
              const std::string &help);

    /**
     * Parses argv. Prints usage and exits(0) on --help; fatal on unknown
     * or malformed flags.
     */
    void parse(int argc, const char *const *argv);

    std::string str(const std::string &name) const;
    std::int64_t integer(const std::string &name) const;
    double real(const std::string &name) const;
    bool boolean(const std::string &name) const;

    /** True iff the flag was explicitly set on the command line. */
    bool provided(const std::string &name) const;

    /** All (name, current value) pairs in declaration order — used by
     *  run manifests to record the effective configuration. */
    std::vector<std::pair<std::string, std::string>> values() const;

    /** Renders the usage/help text. */
    std::string usage() const;

  private:
    struct Flag
    {
        std::string value;
        std::string defaultValue;
        std::string help;
        bool provided = false;
    };

    const Flag &lookup(const std::string &name) const;

    std::string description_;
    std::string program_ = "prog";
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace dee

#endif // DEE_COMMON_CLI_HH
