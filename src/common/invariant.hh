/**
 * @file
 * Structural-invariant assertions for the simulators.
 *
 * DEE_INVARIANT() documents and enforces machine-model invariants
 * (window ordering, tree shape, Levo column recycling) on hot paths.
 * Unlike dee_assert — always on, for cheap internal checks — these are
 * compiled out entirely when the build disables them, so the release
 * simulators pay nothing:
 *
 *   cmake -DDEE_INVARIANTS=OFF ...   # default ON; see CMakeLists.txt
 *
 * A failed invariant is an internal bug: it panics (aborts), exactly
 * like dee_assert.
 */

#ifndef DEE_COMMON_INVARIANT_HH
#define DEE_COMMON_INVARIANT_HH

#include "common/logging.hh"

#if defined(DEE_INVARIANTS) && DEE_INVARIANTS
/** True when DEE_INVARIANT checks are compiled in. */
#define DEE_INVARIANTS_ENABLED 1
#define DEE_INVARIANT(cond, ...) \
    do { \
        if (!(cond)) { \
            dee_panic("invariant '", #cond, "' violated. ", \
                      ##__VA_ARGS__); \
        } \
    } while (0)
#else
#define DEE_INVARIANTS_ENABLED 0
// sizeof keeps the condition unevaluated while still "using" the
// variables it names, so -Wunused stays quiet in both configurations.
#define DEE_INVARIANT(cond, ...) \
    do { \
        (void)sizeof(cond); \
    } while (0)
#endif

#endif // DEE_COMMON_INVARIANT_HH
