#include "common/logging.hh"

#include <cstdio>
#include <cstring>

namespace dee
{

namespace
{

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("DEE_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0 ||
        std::strcmp(env, "quiet") == 0) {
        return LogLevel::Error;
    }
    // "info", "", and anything unrecognized: print everything.
    return LogLevel::Info;
}

LogLevel &
levelStorage()
{
    static LogLevel level = levelFromEnv();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

namespace detail
{

void
logMessage(const char *prefix, const std::string &msg, const char *file,
           int line)
{
    std::fprintf(stderr, "%s: %s (at %s:%d)\n", prefix, msg.c_str(), file,
                 line);
    std::fflush(stderr);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    logMessage("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    logMessage("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg, const char *file, int line)
{
    if (logLevel() > LogLevel::Warn)
        return;
    logMessage("warn", msg, file, line);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() > LogLevel::Info)
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace dee
