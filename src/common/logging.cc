#include "common/logging.hh"

#include <cstdio>

namespace dee
{
namespace detail
{

void
logMessage(const char *prefix, const std::string &msg, const char *file,
           int line)
{
    std::fprintf(stderr, "%s: %s (at %s:%d)\n", prefix, msg.c_str(), file,
                 line);
    std::fflush(stderr);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    logMessage("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    logMessage("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg, const char *file, int line)
{
    logMessage("warn", msg, file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace dee
