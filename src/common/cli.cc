#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace dee
{

Cli::Cli(std::string program_description)
    : description_(std::move(program_description))
{
}

void
Cli::flag(const std::string &name, const std::string &default_value,
          const std::string &help)
{
    dee_assert(!flags_.count(name), "duplicate flag --", name);
    flags_[name] = Flag{default_value, default_value, help};
    order_.push_back(name);
}

void
Cli::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            dee_fatal("expected a --flag, got '", arg, "'");
        arg = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            if (i + 1 >= argc)
                dee_fatal("flag --", name, " is missing a value");
            value = argv[++i];
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            dee_fatal("unknown flag --", name, "\n", usage());
        it->second.value = value;
        it->second.provided = true;
    }
}

bool
Cli::provided(const std::string &name) const
{
    return lookup(name).provided;
}

std::vector<std::pair<std::string, std::string>>
Cli::values() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(order_.size());
    for (const auto &name : order_)
        out.emplace_back(name, flags_.at(name).value);
    return out;
}

const Cli::Flag &
Cli::lookup(const std::string &name) const
{
    auto it = flags_.find(name);
    dee_assert(it != flags_.end(), "flag --", name, " was never declared");
    return it->second;
}

std::string
Cli::str(const std::string &name) const
{
    return lookup(name).value;
}

std::int64_t
Cli::integer(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    char *end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        dee_fatal("flag --", name, " expects an integer, got '", v, "'");
    return parsed;
}

double
Cli::real(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        dee_fatal("flag --", name, " expects a number, got '", v, "'");
    return parsed;
}

bool
Cli::boolean(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    dee_fatal("flag --", name, " expects true/false, got '", v, "'");
}

std::string
Cli::usage() const
{
    std::ostringstream oss;
    oss << description_ << "\n\nusage: " << program_
        << " [--flag value]...\n";
    for (const auto &name : order_) {
        const Flag &f = flags_.at(name);
        oss << "  --" << name << " (default: " << f.defaultValue << ")\n"
            << "      " << f.help << "\n";
    }
    return oss.str();
}

} // namespace dee
