/**
 * @file
 * Small statistics toolkit used throughout the simulators and benches.
 *
 * The paper reports harmonic means over benchmarks (its Figure 5 summary
 * graph) and per-run distributions (e.g. where in the DEE tree mispredicted
 * branches resolve), so this module provides running moments, the three
 * Pythagorean means, and a fixed-bucket histogram.
 */

#ifndef DEE_COMMON_STATS_HH
#define DEE_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dee
{

/** Single-pass accumulator for count/mean/min/max/variance (Welford). */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Population variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

    /**
     * Keeps every future add()'ed sample in an ordered log, so this
     * stat can later be merge()d into another *bit-exactly* — the
     * target replays the log through add(), which is indistinguishable
     * from having received the samples directly. Used by the parallel
     * runner's per-cell registries (obs/isolate.hh); cells see a
     * handful of samples each, so the log stays tiny.
     */
    void enableSampleLog() { logging_ = true; }

    /** The replay log, or null when enableSampleLog() was never on. */
    const std::vector<double> *sampleLog() const
    {
        return logging_ ? &samples_ : nullptr;
    }

    /**
     * Folds @p other into this stat. When @p other carries a sample
     * log the merge is an exact replay (bit-identical to sequential
     * add()s in log order); otherwise the moments are combined with
     * the parallel Welford formulas, which is mathematically right but
     * not bit-identical to a sequential accumulation.
     */
    void merge(const RunningStat &other);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    bool logging_ = false;
    std::vector<double> samples_;
};

/** Arithmetic mean of a sample vector; 0 for an empty vector. */
double arithmeticMean(const std::vector<double> &xs);

/** Geometric mean; all samples must be > 0. */
double geometricMean(const std::vector<double> &xs);

/**
 * Harmonic mean; all samples must be > 0.
 *
 * This is the summary statistic the paper uses for its "Harmonic Mean"
 * graph and for the espresso multi-input datum.
 */
double harmonicMean(const std::vector<double> &xs);

/** Fixed-width bucket histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    /** @param lo lower bound, @param hi upper bound, @param buckets count */
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    /** Adds @p x with multiplicity @p weight (no-op when weight==0). */
    void add(double x, std::uint64_t weight);

    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Fraction of all samples falling in bucket i. */
    double fraction(std::size_t i) const;

    /** Lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

    /** The construction-time bounds (geometry identity for merge()). */
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /**
     * Value below which fraction @p p (in [0, 1]) of the samples fall,
     * linearly interpolated inside the winning bucket and clamped to
     * [lo, hi]. Underflow mass reports lo; overflow mass reports hi.
     * Returns NaN on an empty histogram — the sentinel callers must
     * test with std::isnan — and never indexes past the bucket array,
     * including the single-bucket / all-mass-in-one-bucket cases.
     */
    double percentile(double p) const;

    /** Renders "label: [lo,hi) count (pct%)" lines. */
    std::string render(const std::string &label) const;

    /**
     * Adds @p other's bucket/underflow/overflow counts to this
     * histogram. Counts are integers, so the merge is exact: merging
     * per-run histograms gives the same result as accumulating every
     * sample into one. Fatal when the geometries differ.
     */
    void merge(const Histogram &other);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace dee

#endif // DEE_COMMON_STATS_HH
