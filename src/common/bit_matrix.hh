/**
 * @file
 * Dense 2-D bit matrix.
 *
 * Models the CONDEL-2 / Levo bookkeeping matrices: the Really Executed
 * (RE) and Virtually Executed (VE) n x m bit matrices of Figure 3, where
 * row i is the i-th static instruction of the Instruction Queue and column
 * j is the j-th in-flight instance (loop iteration).
 */

#ifndef DEE_COMMON_BIT_MATRIX_HH
#define DEE_COMMON_BIT_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace dee
{

/** Row-major matrix of bits with row/column clear operations. */
class BitMatrix
{
  public:
    BitMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), bits_(rows * cols, false)
    {
        dee_assert(rows > 0 && cols > 0, "BitMatrix must be non-empty");
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    bool
    get(std::size_t r, std::size_t c) const
    {
        return bits_[index(r, c)];
    }

    void
    set(std::size_t r, std::size_t c, bool v = true)
    {
        bits_[index(r, c)] = v;
    }

    void
    clear(std::size_t r, std::size_t c)
    {
        bits_[index(r, c)] = false;
    }

    /** Clears every bit. */
    void
    reset()
    {
        bits_.assign(bits_.size(), false);
    }

    /** Clears an entire column (used when an iteration retires). */
    void
    clearColumn(std::size_t c)
    {
        for (std::size_t r = 0; r < rows_; ++r)
            clear(r, c);
    }

    /** Clears an entire row. */
    void
    clearRow(std::size_t r)
    {
        for (std::size_t c = 0; c < cols_; ++c)
            clear(r, c);
    }

    /** Number of set bits. */
    std::size_t
    popcount() const
    {
        std::size_t n = 0;
        for (bool b : bits_)
            n += b ? 1 : 0;
        return n;
    }

  private:
    std::size_t
    index(std::size_t r, std::size_t c) const
    {
        dee_assert(r < rows_ && c < cols_, "BitMatrix index (", r, ",", c,
                   ") out of ", rows_, "x", cols_);
        return r * cols_ + c;
    }

    std::size_t rows_;
    std::size_t cols_;
    std::vector<bool> bits_;
};

} // namespace dee

#endif // DEE_COMMON_BIT_MATRIX_HH
