/**
 * @file
 * Dense 2-D bit matrix.
 *
 * Models the CONDEL-2 / Levo bookkeeping matrices: the Really Executed
 * (RE) and Virtually Executed (VE) n x m bit matrices of Figure 3, where
 * row i is the i-th static instruction of the Instruction Queue and column
 * j is the j-th in-flight instance (loop iteration).
 */

#ifndef DEE_COMMON_BIT_MATRIX_HH
#define DEE_COMMON_BIT_MATRIX_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace dee
{

/**
 * Packed bit vector over uint64 words with popcount/ctz scans — the
 * literal-bitset form of Levo's RE/VE row sets, and the per-path set
 * representation of the fast simulation engine (ends-in-branch,
 * prediction-correctness and mispredict sets over branch paths).
 *
 * Element order is LSB-first within each word, so forEachSet() visits
 * indices in ascending order — the property the engines rely on for
 * deterministic, grid-ordered iteration.
 */
class BitVec64
{
  public:
    explicit BitVec64(std::size_t size = 0)
        : size_(size), words_((size + 63) / 64, 0)
    {
    }

    std::size_t size() const { return size_; }
    std::size_t numWords() const { return words_.size(); }

    std::uint64_t
    word(std::size_t w) const
    {
        dee_assert(w < words_.size(), "BitVec64 word ", w, " out of ",
                   words_.size());
        return words_[w];
    }

    bool
    test(std::size_t i) const
    {
        dee_assert(i < size_, "BitVec64 index ", i, " out of ", size_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(std::size_t i)
    {
        dee_assert(i < size_, "BitVec64 index ", i, " out of ", size_);
        words_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

    void
    reset(std::size_t i)
    {
        dee_assert(i < size_, "BitVec64 index ", i, " out of ", size_);
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    void
    assign(std::size_t i, bool v)
    {
        if (v)
            set(i);
        else
            reset(i);
    }

    /** Clears every bit, keeping the size. */
    void
    clear()
    {
        words_.assign(words_.size(), 0);
    }

    /** Number of set bits (word-parallel popcount). */
    std::size_t
    popcount() const
    {
        std::size_t n = 0;
        for (const std::uint64_t w : words_)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** In-place intersection; sizes must match. */
    void
    andWith(const BitVec64 &other)
    {
        dee_assert(other.size_ == size_, "BitVec64 size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= other.words_[w];
    }

    /** In-place union; sizes must match. */
    void
    orWith(const BitVec64 &other)
    {
        dee_assert(other.size_ == size_, "BitVec64 size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] |= other.words_[w];
    }

    /** In-place difference (this &= ~other); sizes must match. */
    void
    andNotWith(const BitVec64 &other)
    {
        dee_assert(other.size_ == size_, "BitVec64 size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= ~other.words_[w];
    }

    /** Calls @p fn with every set index, ascending, via ctz scan. */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits != 0) {
                const int b = std::countr_zero(bits);
                fn((w << 6) + static_cast<std::size_t>(b));
                bits &= bits - 1; // clear lowest set bit
            }
        }
    }

  private:
    std::size_t size_;
    std::vector<std::uint64_t> words_;
};

/** Row-major matrix of bits with row/column clear operations. */
class BitMatrix
{
  public:
    BitMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), bits_(rows * cols, false)
    {
        dee_assert(rows > 0 && cols > 0, "BitMatrix must be non-empty");
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    bool
    get(std::size_t r, std::size_t c) const
    {
        return bits_[index(r, c)];
    }

    void
    set(std::size_t r, std::size_t c, bool v = true)
    {
        bits_[index(r, c)] = v;
    }

    void
    clear(std::size_t r, std::size_t c)
    {
        bits_[index(r, c)] = false;
    }

    /** Clears every bit. */
    void
    reset()
    {
        bits_.assign(bits_.size(), false);
    }

    /** Clears an entire column (used when an iteration retires). */
    void
    clearColumn(std::size_t c)
    {
        for (std::size_t r = 0; r < rows_; ++r)
            clear(r, c);
    }

    /** Clears an entire row. */
    void
    clearRow(std::size_t r)
    {
        for (std::size_t c = 0; c < cols_; ++c)
            clear(r, c);
    }

    /** Number of set bits. */
    std::size_t
    popcount() const
    {
        std::size_t n = 0;
        for (bool b : bits_)
            n += b ? 1 : 0;
        return n;
    }

  private:
    std::size_t
    index(std::size_t r, std::size_t c) const
    {
        dee_assert(r < rows_ && c < cols_, "BitMatrix index (", r, ",", c,
                   ") out of ", rows_, "x", cols_);
        return r * cols_ + c;
    }

    std::size_t rows_;
    std::size_t cols_;
    std::vector<bool> bits_;
};

} // namespace dee

#endif // DEE_COMMON_BIT_MATRIX_HH
