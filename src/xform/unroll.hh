/**
 * @file
 * Machine-code to machine-code loop unrolling filter.
 *
 * The paper (Section 4.2): "The execution of loops with lengths less
 * than that of the Instruction Queue can be enhanced by a machine-code
 * to machine-code loop unrolling filter program, to achieve average
 * loop sizes of about 3/4 the length of the Queue."
 *
 * unrollProgram() is that filter: it finds simple counted loops — a
 * contiguous block range [head..latch] whose only back edge is the
 * latch's conditional branch and which no outside branch enters — and
 * replicates the body, rewriting each non-final copy's latch into an
 * inverted loop-exit branch that falls through to the next copy. The
 * transformation is strictly semantics-preserving (tests verify the
 * architectural state against the untransformed program on every
 * workload and on random programs).
 */

#ifndef DEE_XFORM_UNROLL_HH
#define DEE_XFORM_UNROLL_HH

#include <cstdint>

#include "isa/isa.hh"

namespace dee
{

/** Unrolling policy. */
struct UnrollOptions
{
    /** Replication factor for each eligible loop (>= 2 to change
     *  anything). */
    int factor = 2;
    /**
     * Do not unroll a loop whose body would exceed this many static
     * instructions after replication — the paper's "about 3/4 the
     * length of the Queue" sizing rule (24 for the 32-row IQ).
     */
    int maxBodyInstrs = 24;
};

/** What the filter did. */
struct UnrollReport
{
    int loopsConsidered = 0; ///< simple counted loops found
    int loopsUnrolled = 0;   ///< loops actually replicated
    std::size_t instrsBefore = 0;
    std::size_t instrsAfter = 0;
};

/**
 * One candidate loop: blocks [head, latch] with the latch's final
 * conditional branch as the only back edge.
 */
struct LoopInfo
{
    BlockId head = 0;
    BlockId latch = 0;
    std::size_t bodyInstrs = 0;
};

/** Finds the simple counted loops the filter can legally unroll. */
std::vector<LoopInfo> findSimpleLoops(const Program &program);

/** The branch with inverted condition (Eq<->Ne, Lt<->Ge). */
Opcode invertBranch(Opcode op);

/**
 * Applies the filter and returns the transformed program (validated).
 * @param report optional out-parameter with statistics.
 */
Program unrollProgram(const Program &program,
                      const UnrollOptions &options = {},
                      UnrollReport *report = nullptr);

} // namespace dee

#endif // DEE_XFORM_UNROLL_HH
