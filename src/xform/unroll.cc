#include "xform/unroll.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dee
{

Opcode
invertBranch(Opcode op)
{
    switch (op) {
      case Opcode::BranchEq: return Opcode::BranchNe;
      case Opcode::BranchNe: return Opcode::BranchEq;
      case Opcode::BranchLt: return Opcode::BranchGe;
      case Opcode::BranchGe: return Opcode::BranchLt;
      default:
        dee_panic("invertBranch on non-branch ", opcodeName(op));
    }
}

std::vector<LoopInfo>
findSimpleLoops(const Program &program)
{
    std::vector<LoopInfo> loops;
    const auto num_blocks = static_cast<BlockId>(program.numBlocks());

    for (BlockId latch = 0; latch < num_blocks; ++latch) {
        const BasicBlock &lb = program.block(latch);
        if (lb.instrs.empty())
            continue;
        const Instruction &br = lb.instrs.back();
        if (!isCondBranch(br.op) || br.target > latch)
            continue;
        const BlockId head = br.target;
        // The latch must have an in-bounds fallthrough exit.
        if (latch + 1 >= num_blocks)
            continue;

        // Eligibility: the latch's branch is the only back edge in
        // [head, latch]; no control from outside enters at any block
        // other than the head; interior control stays inside or exits
        // forward past the latch.
        bool eligible = true;
        std::size_t body_instrs = 0;
        for (BlockId b = 0; b < num_blocks && eligible; ++b) {
            const bool inside = b >= head && b <= latch;
            if (inside)
                body_instrs += program.block(b).instrs.size();
            const BasicBlock &blk = program.block(b);
            if (blk.instrs.empty())
                continue;
            const Instruction &last = blk.instrs.back();
            if (!isCondBranch(last.op) && last.op != Opcode::Jump)
                continue;
            const BlockId target = last.target;
            const bool target_inside = target >= head && target <= latch;
            if (!inside && target_inside && target != head)
                eligible = false; // side entry into the body
            if (inside && b != latch && target_inside && target <= b)
                eligible = false; // interior back edge (nested loop)
            if (b == latch && isCondBranch(last.op) && target != head)
                eligible = false; // (can't happen; defensive)
        }
        if (eligible)
            loops.push_back(LoopInfo{head, latch, body_instrs});
    }
    return loops;
}

namespace
{

/** Replicates one eligible loop `factor` times. */
Program
unrollOne(const Program &program, const LoopInfo &loop, int factor)
{
    const auto num_blocks = static_cast<BlockId>(program.numBlocks());
    const BlockId head = loop.head;
    const BlockId latch = loop.latch;
    const BlockId n_body = latch - head + 1;
    const BlockId shift =
        static_cast<BlockId>(factor - 1) * n_body;

    // Remap for code outside the loop (and for exit targets).
    auto remap_outer = [&](BlockId t) {
        return t > latch ? t + shift : t;
    };

    Program out;
    // Prefix.
    for (BlockId b = 0; b < head; ++b) {
        BasicBlock blk = program.block(b);
        for (Instruction &inst : blk.instrs)
            if (isControl(inst.op) && inst.op != Opcode::Halt)
                inst.target = remap_outer(inst.target);
        out.addBlock(std::move(blk));
    }
    // Copies.
    for (int c = 0; c < factor; ++c) {
        const auto copy_off = static_cast<BlockId>(c) * n_body;
        for (BlockId b = head; b <= latch; ++b) {
            BasicBlock blk = program.block(b);
            for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
                Instruction &inst = blk.instrs[i];
                if (!isControl(inst.op) || inst.op == Opcode::Halt)
                    continue;
                const bool is_latch_branch =
                    b == latch && i + 1 == blk.instrs.size() &&
                    isCondBranch(inst.op);
                if (is_latch_branch) {
                    if (c + 1 == factor) {
                        inst.target = head; // back to copy 0
                    } else {
                        // Continue -> fall through to the next copy;
                        // exit -> inverted branch to the loop exit.
                        inst.op = invertBranch(inst.op);
                        inst.target = remap_outer(latch + 1);
                    }
                } else if (inst.target >= head && inst.target <= latch) {
                    inst.target += copy_off; // stay in this copy
                } else {
                    inst.target = remap_outer(inst.target);
                }
            }
            out.addBlock(std::move(blk));
        }
    }
    // Suffix.
    for (BlockId b = latch + 1; b < num_blocks; ++b) {
        BasicBlock blk = program.block(b);
        for (Instruction &inst : blk.instrs)
            if (isControl(inst.op) && inst.op != Opcode::Halt)
                inst.target = remap_outer(inst.target);
        out.addBlock(std::move(blk));
    }
    out.validate();
    return out;
}

} // namespace

Program
unrollProgram(const Program &program, const UnrollOptions &options,
              UnrollReport *report)
{
    dee_assert(options.factor >= 1, "unroll factor must be >= 1");
    UnrollReport local;
    local.instrsBefore = program.numInstrs();

    Program current = program;
    // Unroll highest-address loops first so earlier loop coordinates
    // stay valid across rebuilds.
    std::vector<LoopInfo> loops = findSimpleLoops(current);
    local.loopsConsidered = static_cast<int>(loops.size());
    std::sort(loops.begin(), loops.end(),
              [](const LoopInfo &a, const LoopInfo &b) {
                  return a.head > b.head;
              });
    for (const LoopInfo &loop : loops) {
        if (loop.bodyInstrs == 0)
            continue;
        const int fit = static_cast<int>(
            static_cast<std::size_t>(options.maxBodyInstrs) /
            loop.bodyInstrs);
        const int factor = std::min(options.factor, fit);
        if (factor < 2)
            continue;
        current = unrollOne(current, loop, factor);
        ++local.loopsUnrolled;
    }

    local.instrsAfter = current.numInstrs();
    if (report)
        *report = local;
    return current;
}

} // namespace dee
