/**
 * @file
 * Functional ("golden model") interpreter.
 *
 * Executes a Program sequentially, producing both the final architectural
 * state and the dynamic Trace that drives the ILP simulators. The Levo
 * machine model validates its architectural results against this
 * interpreter — the same role the sequential machine plays as the
 * speedup-1.0 baseline in the paper.
 */

#ifndef DEE_EXEC_INTERP_HH
#define DEE_EXEC_INTERP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"
#include "trace/trace.hh"

namespace dee
{

/** Architectural state: registers and word-granular sparse memory. */
struct MachineState
{
    std::vector<std::int64_t> regs = std::vector<std::int64_t>(kNumRegs, 0);
    std::unordered_map<std::uint64_t, std::int64_t> memory;

    std::int64_t readReg(RegId r) const;
    void writeReg(RegId r, std::int64_t v);
    std::int64_t readMem(std::uint64_t addr) const;
    void writeMem(std::uint64_t addr, std::int64_t v);
};

/** Pure instruction semantics shared by the interpreter and Levo. */
namespace semantics
{

/** ALU result for register and immediate forms. Division by zero is 0. */
std::int64_t alu(Opcode op, std::int64_t a, std::int64_t b);

/** Branch condition outcome. */
bool branchTaken(Opcode op, std::int64_t a, std::int64_t b);

} // namespace semantics

/** Outcome of an interpreter run. */
struct ExecResult
{
    Trace trace;            ///< Dynamic trace (if capture was enabled).
    MachineState state;     ///< Final architectural state.
    std::uint64_t steps = 0;///< Instructions executed.
    bool halted = false;    ///< Reached Halt (vs. hitting the step cap).
};

/** Sequential interpreter over a validated Program. */
class Interpreter
{
  public:
    /** Takes the program by value: the interpreter owns its copy, so
     *  passing a temporary (e.g. builder.build()) is safe. */
    explicit Interpreter(Program program);

    /**
     * Runs from block 0 until Halt or max_instrs.
     *
     * @param max_instrs step cap (guards generator bugs / long loops)
     * @param capture_trace disable to save memory when only the final
     *                      state matters
     */
    ExecResult run(std::uint64_t max_instrs = 1'000'000,
                   bool capture_trace = true) const;

  private:
    Program program_;
};

} // namespace dee

#endif // DEE_EXEC_INTERP_HH
