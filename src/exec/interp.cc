#include "exec/interp.hh"

#include "common/logging.hh"

namespace dee
{

std::int64_t
MachineState::readReg(RegId r) const
{
    dee_assert(r < kNumRegs, "register ", int{r}, " out of range");
    return r == kZeroReg ? 0 : regs[r];
}

void
MachineState::writeReg(RegId r, std::int64_t v)
{
    dee_assert(r < kNumRegs, "register ", int{r}, " out of range");
    if (r != kZeroReg)
        regs[r] = v;
}

std::int64_t
MachineState::readMem(std::uint64_t addr) const
{
    auto it = memory.find(addr);
    return it == memory.end() ? 0 : it->second;
}

void
MachineState::writeMem(std::uint64_t addr, std::int64_t v)
{
    memory[addr] = v;
}

namespace semantics
{

std::int64_t
alu(Opcode op, std::int64_t a, std::int64_t b)
{
    const auto ua = static_cast<std::uint64_t>(a);
    switch (op) {
      case Opcode::Add:
      case Opcode::AddI:
        return static_cast<std::int64_t>(
            ua + static_cast<std::uint64_t>(b));
      case Opcode::Sub:
        return static_cast<std::int64_t>(
            ua - static_cast<std::uint64_t>(b));
      case Opcode::Mul:
        return static_cast<std::int64_t>(
            ua * static_cast<std::uint64_t>(b));
      case Opcode::Div:
        return b == 0 ? 0 : a / b;
      case Opcode::And:
      case Opcode::AndI:
        return a & b;
      case Opcode::Or:
      case Opcode::OrI:
        return a | b;
      case Opcode::Xor:
      case Opcode::XorI:
        return a ^ b;
      case Opcode::Sll:
      case Opcode::ShlI:
        return static_cast<std::int64_t>(ua << (b & 63));
      case Opcode::Srl:
      case Opcode::ShrI:
        return static_cast<std::int64_t>(ua >> (b & 63));
      case Opcode::Slt:
      case Opcode::SltI:
        return a < b ? 1 : 0;
      default:
        dee_panic("alu() called with non-ALU opcode ", opcodeName(op));
    }
}

bool
branchTaken(Opcode op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case Opcode::BranchEq:
        return a == b;
      case Opcode::BranchNe:
        return a != b;
      case Opcode::BranchLt:
        return a < b;
      case Opcode::BranchGe:
        return a >= b;
      default:
        dee_panic("branchTaken() with non-branch opcode ",
                  opcodeName(op));
    }
}

} // namespace semantics

Interpreter::Interpreter(Program program) : program_(std::move(program))
{
    program_.validate();
}

ExecResult
Interpreter::run(std::uint64_t max_instrs, bool capture_trace) const
{
    ExecResult result;
    MachineState &st = result.state;

    BlockId block = 0;
    std::size_t idx = 0;

    while (result.steps < max_instrs) {
        // Fallthrough across empty / exhausted blocks.
        while (idx >= program_.block(block).instrs.size()) {
            dee_assert(block + 1 < program_.numBlocks(),
                       "fell off program end (validate missed it)");
            ++block;
            idx = 0;
        }

        const Instruction &inst = program_.block(block).instrs[idx];
        const StaticId sid = program_.staticId(block, idx);
        ++result.steps;

        TraceRecord rec;
        rec.sid = sid;
        rec.block = block;
        rec.op = inst.op;
        rec.rd = inst.dest();
        rec.rs1 = inst.rs1;
        rec.rs2 = inst.rs2;

        bool record = capture_trace;
        BlockId next_block = block;
        std::size_t next_idx = idx + 1;

        switch (opClass(inst.op)) {
          case OpClass::IntAlu: {
            std::int64_t value;
            if (inst.op == Opcode::LoadImm) {
                value = inst.imm;
            } else if (inst.rs2 != kNoReg) {
                value = semantics::alu(inst.op, st.readReg(inst.rs1),
                                       st.readReg(inst.rs2));
            } else {
                value = semantics::alu(inst.op, st.readReg(inst.rs1),
                                       inst.imm);
            }
            st.writeReg(inst.rd, value);
            break;
          }
          case OpClass::Load: {
            const auto addr = static_cast<std::uint64_t>(
                st.readReg(inst.rs1) + inst.imm);
            st.writeReg(inst.rd, st.readMem(addr));
            rec.memAddr = addr;
            break;
          }
          case OpClass::Store: {
            const auto addr = static_cast<std::uint64_t>(
                st.readReg(inst.rs1) + inst.imm);
            st.writeMem(addr, st.readReg(inst.rs2));
            rec.memAddr = addr;
            break;
          }
          case OpClass::CondBranch: {
            const bool taken = semantics::branchTaken(
                inst.op, st.readReg(inst.rs1), st.readReg(inst.rs2));
            rec.isBranch = true;
            rec.taken = taken;
            rec.backward = inst.target <= block;
            if (taken) {
                next_block = inst.target;
                next_idx = 0;
            } else {
                next_block = block + 1;
                next_idx = 0;
            }
            break;
          }
          case OpClass::Jump:
            next_block = inst.target;
            next_idx = 0;
            break;
          case OpClass::Halt:
            result.halted = true;
            if (record)
                result.trace.records.push_back(rec);
            result.trace.numStatic =
                static_cast<std::uint32_t>(program_.numInstrs());
            return result;
          case OpClass::Nop:
            break;
        }

        if (record)
            result.trace.records.push_back(rec);

        block = next_block;
        idx = next_idx;
    }

    result.trace.numStatic =
        static_cast<std::uint32_t>(program_.numInstrs());
    return result;
}

} // namespace dee
