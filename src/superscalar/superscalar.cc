#include "superscalar/superscalar.hh"

#include <algorithm>
#include <array>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace dee
{

std::string
SuperscalarResult::render() const
{
    std::ostringstream oss;
    oss << "instructions=" << instructions << " cycles=" << cycles
        << " ipc=" << ipc << " branches=" << branches
        << " mispredicted=" << mispredicted;
    return oss.str();
}

namespace
{

/** Per-cycle bandwidth meter: earliest cycle >= t with a free slot. */
class Bandwidth
{
  public:
    explicit Bandwidth(int width) : width_(width) {}

    std::int64_t
    claim(std::int64_t t)
    {
        if (width_ == 0)
            return t;
        while (true) {
            auto &used = used_[t];
            if (used < width_) {
                ++used;
                return t;
            }
            ++t;
        }
    }

  private:
    int width_;
    std::unordered_map<std::int64_t, int> used_;
};

} // namespace

SuperscalarResult
superscalarSim(const Trace &trace, const SuperscalarConfig &config)
{
    dee_assert(config.windowSize >= 1, "window must hold something");
    dee_assert(config.fetchWidth >= 1 && config.issueWidth >= 1 &&
                   config.retireWidth >= 1,
               "widths must be positive");

    SuperscalarResult result;
    const auto &records = trace.records;
    result.instructions = records.size();
    if (records.empty())
        return result;

    auto predictor = makePredictor(config.predictor, trace.numStatic);

    Bandwidth fetch_bw(config.fetchWidth);
    Bandwidth issue_bw(config.issueWidth);
    Bandwidth retire_bw(config.retireWidth);

    std::vector<std::int64_t> complete(records.size(), 0);
    // Ring of retire times for the window-occupancy constraint.
    std::vector<std::int64_t> retire(
        static_cast<std::size_t>(config.windowSize), 0);

    std::array<std::int64_t, kNumRegs> reg_ready;
    reg_ready.fill(0);
    std::unordered_map<std::uint64_t, std::int64_t> mem_ready;

    std::int64_t fetch_floor = 0;   // flush point after a mispredict
    std::int64_t last_retire = 0;

    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];

        // Fetch: in order, bandwidth-limited, window-occupancy-limited
        // (the instruction windowSize back must have retired), and
        // blocked behind unresolved mispredicted branches.
        std::int64_t f = fetch_floor;
        if (i >= static_cast<std::size_t>(config.windowSize)) {
            f = std::max(
                f, retire[i % static_cast<std::size_t>(
                              config.windowSize)]);
        }
        f = fetch_bw.claim(f);

        // Issue: out of order once operands are ready.
        std::int64_t ready = f + 1; // decode/rename stage
        if (rec.rs1 != kNoReg && rec.rs1 != kZeroReg)
            ready = std::max(ready, reg_ready[rec.rs1]);
        if (rec.rs2 != kNoReg && rec.rs2 != kZeroReg)
            ready = std::max(ready, reg_ready[rec.rs2]);
        const OpClass cls = opClass(rec.op);
        if (cls == OpClass::Load || cls == OpClass::Store) {
            auto it = mem_ready.find(rec.memAddr);
            if (it != mem_ready.end())
                ready = std::max(ready, it->second);
        }
        const std::int64_t issue = issue_bw.claim(ready);
        const std::int64_t done = issue + config.latency.of(cls);
        complete[i] = done;

        if (rec.rd != kNoReg && rec.rd != kZeroReg)
            reg_ready[rec.rd] = done;
        if (cls == OpClass::Store)
            mem_ready[rec.memAddr] = done;

        // Retire: in order, bandwidth-limited.
        std::int64_t r = std::max(done, last_retire);
        r = retire_bw.claim(r);
        last_retire = r;
        retire[i % static_cast<std::size_t>(config.windowSize)] = r;

        // Branch prediction: a mispredict flushes — later fetch waits
        // for resolution plus the refill penalty.
        if (rec.isBranch) {
            ++result.branches;
            BranchQuery q;
            q.sid = rec.sid;
            q.backward = rec.backward;
            q.actual = rec.taken;
            const bool predicted = predictor->predict(q);
            predictor->update(q, rec.taken);
            if (predicted != rec.taken) {
                ++result.mispredicted;
                fetch_floor = std::max(
                    fetch_floor, done + config.mispredictPenalty);
            }
        }
    }

    result.cycles = static_cast<std::uint64_t>(
        std::max<std::int64_t>(last_retire, 1));
    result.ipc = static_cast<double>(records.size()) /
                 static_cast<double>(result.cycles);
    return result;
}

} // namespace dee
