/**
 * @file
 * Conventional dynamic-window superscalar model.
 *
 * The paper's foil (Sections 1 and 4.1): "In traditional processors,
 * the instruction window holds dynamic instructions. Mispredicted
 * branches commonly cause the window to be flushed", and "the typical
 * average performance gain due to ILP is only at most a factor of 2 or
 * 3 better than an ideal sequential machine."
 *
 * This model is that machine: in-order fetch of `fetchWidth`
 * instructions per cycle into a `windowSize`-entry dynamic window
 * (ROB), out-of-order issue bounded by `issueWidth`, in-order retire,
 * and a full pipeline flush on every misprediction (later fetch waits
 * for branch resolution plus the refill penalty). Comparing it against
 * Levo and the windowed DEE models quantifies the paper's motivating
 * claim.
 */

#ifndef DEE_SUPERSCALAR_SUPERSCALAR_HH
#define DEE_SUPERSCALAR_SUPERSCALAR_HH

#include <cstdint>
#include <string>

#include "bpred/bpred.hh"
#include "core/sim/window_sim.hh"
#include "trace/trace.hh"

namespace dee
{

/** Machine parameters (defaults: a mid-90s aggressive superscalar). */
struct SuperscalarConfig
{
    int windowSize = 64;      ///< in-flight dynamic instructions (ROB)
    int fetchWidth = 4;       ///< instructions fetched per cycle
    int issueWidth = 4;       ///< instructions issued per cycle
    int retireWidth = 4;      ///< instructions retired per cycle
    int mispredictPenalty = 3;///< flush/refill cycles after resolution
    std::string predictor = "2bit";
    LatencyModel latency = LatencyModel::unit();
};

/** Run outcome. */
struct SuperscalarResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    std::uint64_t branches = 0;
    std::uint64_t mispredicted = 0;

    std::string render() const;
};

/** Simulates the trace on the dynamic-window machine. */
SuperscalarResult superscalarSim(const Trace &trace,
                                 const SuperscalarConfig &config);

} // namespace dee

#endif // DEE_SUPERSCALAR_SUPERSCALAR_HH
