/**
 * @file
 * DEE resource-allocation theory (Section 2 of the paper).
 *
 * Theorem 1: with path cumulative probabilities cp_i and no saturation,
 * total expected performance Ptot = sum(cp_i * e_i) is maximized by
 * placing all E_tot resources on the path with the largest cp.
 *
 * Corollary 1: if a path saturates (can productively use no more than
 * some number of resources), assign up to its saturation point, then
 * recurse on the remaining paths with the remaining resources.
 *
 * The resulting "rule of Greatest Marginal Benefit" — assign all
 * remaining resources to the most likely idle path until it saturates,
 * repeat — *is* Disjoint Eager Execution. allocateResources() implements
 * it; bruteForceBest() exists so tests and bench/thm1_optimality can
 * verify optimality exhaustively on small instances.
 */

#ifndef DEE_CORE_TREE_ALLOCATE_HH
#define DEE_CORE_TREE_ALLOCATE_HH

#include <limits>
#include <vector>

namespace dee
{

/** A branch path competing for execution resources. */
struct PathSpec
{
    /** Cumulative probability the path is needed (product of local
     *  probabilities up the tree). */
    double cp = 0.0;
    /** Resources beyond which the path gains nothing (Corollary 1);
     *  infinity when the path never saturates. */
    double saturation = std::numeric_limits<double>::infinity();
};

/** Expected performance Ptot = sum(cp_i * e_i). */
double totalPerformance(const std::vector<PathSpec> &paths,
                        const std::vector<double> &assignment);

/**
 * Greatest-marginal-benefit allocation: repeatedly give the highest-cp
 * unsaturated path as much as it can take.
 *
 * @return per-path resource assignment summing to at most e_tot (less
 *         only if every path saturates first).
 */
std::vector<double> allocateResources(const std::vector<PathSpec> &paths,
                                      double e_tot);

/**
 * Exhaustive optimum over integer assignments (for verification only;
 * cost is combinatorial — keep paths and e_tot small).
 */
double bruteForceBest(const std::vector<PathSpec> &paths, int e_tot);

} // namespace dee

#endif // DEE_CORE_TREE_ALLOCATE_HH
