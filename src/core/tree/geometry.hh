/**
 * @file
 * Closed-form static-tree geometry (Section 3.1 of the paper).
 *
 * For a characteristic branch prediction accuracy p and a branch-path
 * resource budget E_T, the static DEE tree consists of a Main-Line (ML)
 * path of l branch paths and a triangular DEE region of height (and
 * width) h_DEE whose side paths split off the first h_DEE ML branches
 * and all end at depth h_DEE. The paper's relations:
 *
 *     E_T   = log_p(1-p) + h^2/2 + 3h/2 - 1
 *     h_DEE = -3/2 + (1/2) * sqrt(8 E_T - 8 log_p(1-p) + 17)
 *     l     = h_DEE + log_p(1-p) - 1
 *
 * valid while p^l > (1-p)^2 (no second-order side paths are worth
 * including) and (1-p) > p^l (the DEE region is non-empty).
 */

#ifndef DEE_CORE_TREE_GEOMETRY_HH
#define DEE_CORE_TREE_GEOMETRY_HH

#include <string>

namespace dee
{

/** Integer static-tree dimensions for a (p, E_T) design point. */
struct TreeGeometry
{
    double p = 0.0;          ///< Characteristic prediction accuracy.
    int resources = 0;       ///< E_T, total branch paths in the tree.
    int mainLineLength = 0;  ///< l, ML branch paths.
    int deeHeight = 0;       ///< h_DEE (== w_DEE), 0 if no DEE region.

    /** True if the design point has any DEE side paths. */
    bool hasDeeRegion() const { return deeHeight > 0; }

    std::string render() const;
};

/** log_p(1-p), the ML depth at which a first-level side path wins. */
double logP1mp(double p);

/** Real-valued E_T for a given h (paper's first relation). */
double etForHeight(double p, double h);

/** Real-valued h_DEE for a given E_T (paper's second relation). */
double heightForEt(double p, double e_t);

/** Real-valued l for a given h (paper's third relation). */
double mlLengthForHeight(double p, double h);

/** True while the closed forms apply: p^l > (1-p)^2. */
bool geometryValid(double p, double l);

/** True if a DEE region exists at all: (1-p) > p^l. */
bool deeRegionNonEmpty(double p, double l);

/**
 * Integer design point: rounds h to the nearest integer consistent with
 * spending exactly E_T branch paths (l = E_T - h(h+1)/2), clamping so
 * that l >= h >= 0. With p high enough that no side path beats the ML
 * tail (E_T <= ~log_p(1-p)), the result is a pure SP chain (h = 0,
 * l = E_T).
 *
 * Requires 0.5 <= p < 1 and E_T >= 1 (fatal otherwise — a predictor
 * worse than 50% would be used inverted).
 */
TreeGeometry computeGeometry(double p, int e_t);

} // namespace dee

#endif // DEE_CORE_TREE_GEOMETRY_HH
