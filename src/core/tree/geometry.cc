#include "core/tree/geometry.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace dee
{

double
logP1mp(double p)
{
    dee_assert(p > 0.0 && p < 1.0, "p must be in (0,1)");
    return std::log(1.0 - p) / std::log(p);
}

double
etForHeight(double p, double h)
{
    return logP1mp(p) + h * h / 2.0 + 1.5 * h - 1.0;
}

double
heightForEt(double p, double e_t)
{
    // Inverse of etForHeight; the paper writes it as
    // h = -3/2 + (1/2) sqrt(8 E_T - 8 log_p(1-p) + 17).
    const double arg = 8.0 * e_t - 8.0 * logP1mp(p) + 17.0;
    if (arg <= 0.0)
        return 0.0;
    return -1.5 + 0.5 * std::sqrt(arg);
}

double
mlLengthForHeight(double p, double h)
{
    return h + logP1mp(p) - 1.0;
}

bool
geometryValid(double p, double l)
{
    return std::pow(p, l) > (1.0 - p) * (1.0 - p);
}

bool
deeRegionNonEmpty(double p, double l)
{
    return (1.0 - p) > std::pow(p, l);
}

TreeGeometry
computeGeometry(double p, int e_t)
{
    if (!(p >= 0.5 && p < 1.0))
        dee_fatal("prediction accuracy p=", p, " must be in [0.5, 1); a "
                  "predictor below 50% should be used inverted");
    if (e_t < 1)
        dee_fatal("resource budget E_T=", e_t, " must be >= 1");

    TreeGeometry g;
    g.p = p;
    g.resources = e_t;

    // A first-level side path (cp = 1-p) only beats extending the ML
    // chain once the chain tail drops below it, i.e. at depth
    // l > log_p(1-p). With fewer resources than that, DEE degenerates
    // to SP — exactly the paper's observation that DEE and SP coincide
    // at and below 16 paths for p ~ 0.905.
    const double threshold = logP1mp(p);
    if (static_cast<double>(e_t) <= threshold) {
        g.mainLineLength = e_t;
        g.deeHeight = 0;
        return g;
    }

    int h = static_cast<int>(
        std::lround(heightForEt(p, static_cast<double>(e_t))));
    h = std::max(h, 0);

    // Spend exactly e_t paths: l = e_t - h(h+1)/2, keeping the ML at
    // least as deep as the DEE region (side paths end at depth h <= l).
    auto ml_for = [&](int hh) { return e_t - hh * (hh + 1) / 2; };
    while (h > 0 && ml_for(h) < std::max(h, 1))
        --h;

    g.deeHeight = h;
    g.mainLineLength = ml_for(h);
    dee_assert(g.mainLineLength >= 1, "degenerate geometry");
    return g;
}

std::string
TreeGeometry::render() const
{
    std::ostringstream oss;
    oss << "static DEE tree: p=" << p << " E_T=" << resources
        << " -> l=" << mainLineLength << " h_DEE=" << deeHeight;
    if (!hasDeeRegion())
        oss << " (pure SP chain)";
    return oss.str();
}

} // namespace dee
