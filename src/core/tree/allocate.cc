#include "core/tree/allocate.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace dee
{

double
totalPerformance(const std::vector<PathSpec> &paths,
                 const std::vector<double> &assignment)
{
    dee_assert(paths.size() == assignment.size(),
               "assignment arity mismatch");
    double ptot = 0.0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        // Resources past saturation contribute nothing (Corollary 1).
        const double useful = std::min(assignment[i], paths[i].saturation);
        ptot += paths[i].cp * useful;
    }
    return ptot;
}

std::vector<double>
allocateResources(const std::vector<PathSpec> &paths, double e_tot)
{
    dee_assert(e_tot >= 0.0, "negative resource budget");
    std::vector<double> assignment(paths.size(), 0.0);

    // Sort path indices by descending cp; the greatest-marginal-benefit
    // rule visits them in that order, filling each to saturation.
    std::vector<std::size_t> order(paths.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return paths[a].cp > paths[b].cp;
                     });

    double remaining = e_tot;
    for (std::size_t idx : order) {
        if (remaining <= 0.0)
            break;
        if (paths[idx].cp <= 0.0)
            break; // zero-probability paths gain nothing
        const double grant = std::min(remaining, paths[idx].saturation);
        assignment[idx] = grant;
        remaining -= grant;
    }
    return assignment;
}

namespace
{

double
bruteForceRec(const std::vector<PathSpec> &paths, std::size_t i,
              int remaining, std::vector<double> &assignment)
{
    if (i + 1 == paths.size()) {
        assignment[i] = remaining;
        const double v = totalPerformance(paths, assignment);
        assignment[i] = 0;
        return v;
    }
    double best = 0.0;
    for (int give = 0; give <= remaining; ++give) {
        assignment[i] = give;
        best = std::max(best,
                        bruteForceRec(paths, i + 1, remaining - give,
                                      assignment));
    }
    assignment[i] = 0;
    return best;
}

} // namespace

double
bruteForceBest(const std::vector<PathSpec> &paths, int e_tot)
{
    dee_assert(!paths.empty(), "bruteForceBest over no paths");
    dee_assert(paths.size() <= 8 && e_tot <= 32,
               "bruteForceBest instance too large");
    std::vector<double> assignment(paths.size(), 0.0);
    return bruteForceRec(paths, 0, e_tot, assignment);
}

} // namespace dee
