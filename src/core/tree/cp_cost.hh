/**
 * @file
 * Hardware cost of *dynamic* cumulative-probability maintenance — the
 * paper's Section 3 argument for the static tree heuristic:
 *
 *   "30-100 cp's must be maintained for a typical DEE tree; each cp is
 *    the product of many (possibly 10's) of potentially different
 *    local probabilities; ... therefore all of the cp's must be
 *    re-computed every cycle. Thus, hundreds or thousands of
 *    low-precision multiplications would have to be performed every
 *    cycle. Add to that the necessity of determining the largest cp's
 *    every cycle (sorting), and such an approach seems completely
 *    impractical."
 *
 * dynamicCpCost() turns that argument into numbers for any tree shape:
 * per-cycle multiplications for a full recompute (sum of node depths),
 * for an incremental scheme (one multiply per node), and the
 * comparisons a selection network needs. The static heuristic's
 * per-cycle cost is identically zero.
 */

#ifndef DEE_CORE_TREE_CP_COST_HH
#define DEE_CORE_TREE_CP_COST_HH

#include <cstdint>
#include <string>

#include "core/tree/spec_tree.hh"

namespace dee
{

/** Per-cycle arithmetic the dynamic-cp approach would need. */
struct DynamicCpCost
{
    int cps = 0;               ///< cp registers to maintain (tree paths)
    double meanDepth = 0.0;    ///< local probabilities per cp
    std::uint64_t fullRecomputeMults = 0; ///< sum of depths
    std::uint64_t incrementalMults = 0;   ///< one per node
    std::uint64_t sortComparisons = 0;    ///< ~n log2 n selection

    std::string render() const;
};

/** Evaluates the paper's cost argument on a concrete tree. */
DynamicCpCost dynamicCpCost(const SpecTree &tree);

} // namespace dee

#endif // DEE_CORE_TREE_CP_COST_HH
