#include "core/tree/spec_tree.hh"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <numeric>
#include <queue>
#include <sstream>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/hotspot/hotspot.hh"

namespace dee
{

SpecTree::SpecTree()
{
    nodes_.push_back(TreeNode{});
}

const TreeNode &
SpecTree::node(int id) const
{
    dee_assert(id >= 0 && id < static_cast<int>(nodes_.size()),
               "tree node ", id, " out of range");
    return nodes_[id];
}

int
SpecTree::child(int id, bool predicted_edge) const
{
    const TreeNode &n = node(id);
    return predicted_edge ? n.predChild : n.npredChild;
}

int
SpecTree::maxDepth() const
{
    int depth = 0;
    for (const auto &n : nodes_)
        depth = std::max(depth, n.depth);
    return depth;
}

int
SpecTree::addChild(int parent, bool predicted_edge, double local_p)
{
    dee_assert(local_p > 0.0 && local_p <= 1.0, "bad local probability ",
               local_p);
    TreeNode &par = nodes_[parent];
    dee_assert(parent >= 0 && parent < static_cast<int>(nodes_.size()),
               "tree parent ", parent, " out of range");
    int &slot = predicted_edge ? par.predChild : par.npredChild;
    dee_assert(slot == kNoNode, "child slot already occupied");

    TreeNode child;
    child.parent = parent;
    child.viaPredicted = predicted_edge;
    child.depth = par.depth + 1;
    child.cp = par.cp * local_p;
    // cp decays along every edge: a path is never more likely to be
    // needed than the path it hangs from.
    DEE_INVARIANT(child.cp > 0.0 && child.cp <= par.cp,
                  "child cp out of (0, parent cp]");
    const int id = static_cast<int>(nodes_.size());
    slot = id;
    nodes_.push_back(child);
    return id;
}

std::vector<int>
SpecTree::assignmentOrder() const
{
    std::vector<int> order;
    for (int i = 1; i < static_cast<int>(nodes_.size()); ++i)
        order.push_back(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        if (nodes_[a].cp != nodes_[b].cp)
            return nodes_[a].cp > nodes_[b].cp;
        if (nodes_[a].viaPredicted != nodes_[b].viaPredicted)
            return nodes_[a].viaPredicted;
        return a < b;
    });
    return order;
}

std::vector<int>
SpecTree::assignmentRanks() const
{
    const std::vector<int> order = assignmentOrder();
    std::vector<int> rank(nodes_.size(), 0);
    for (std::size_t i = 0; i < order.size(); ++i)
        rank[order[i]] = static_cast<int>(i) + 1;
    return rank;
}

std::vector<int>
SpecTree::walk(const std::vector<bool> &correct) const
{
    std::vector<int> covered(correct.size(), kNoNode);
    int cur = kOrigin;
    for (std::size_t d = 0; d < correct.size(); ++d) {
        cur = child(cur, correct[d]);
        if (cur == kNoNode)
            break;
        covered[d] = cur;
    }
    return covered;
}

FlatSpecTree
SpecTree::flatten(bool with_ranks) const
{
    FlatSpecTree flat;
    const std::size_t count = nodes_.size();
    flat.predChild.resize(count);
    flat.npredChild.resize(count);
    flat.cp.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        flat.predChild[i] = nodes_[i].predChild;
        flat.npredChild[i] = nodes_[i].npredChild;
        flat.cp[i] = nodes_[i].cp;
    }
    flat.maxDepth = maxDepth();
    if (with_ranks) {
        const std::vector<int> ranks = assignmentRanks();
        flat.rank.assign(ranks.begin(), ranks.end());
    }
    return flat;
}

std::string
SpecTree::render() const
{
    const std::vector<int> rank = assignmentRanks();

    std::ostringstream oss;
    oss << std::fixed << std::setprecision(3);

    // Depth-first, predicted edge first, with box-drawing indentation.
    struct Frame { int id; std::string prefix; bool last; };
    auto children = [&](int id) {
        std::vector<int> cs;
        if (nodes_[id].predChild != kNoNode)
            cs.push_back(nodes_[id].predChild);
        if (nodes_[id].npredChild != kNoNode)
            cs.push_back(nodes_[id].npredChild);
        return cs;
    };

    oss << "(pending branch)  paths=" << numPaths() << "\n";
    std::vector<Frame> stack;
    {
        auto cs = children(kOrigin);
        for (std::size_t i = cs.size(); i-- > 0;)
            stack.push_back(Frame{cs[i], "", i + 1 == cs.size()});
    }
    while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        const TreeNode &n = nodes_[f.id];
        oss << f.prefix << (f.last ? "`-" : "|-")
            << (n.viaPredicted ? "P" : "N") << " cp=" << n.cp << "  #"
            << rank[f.id] << "\n";
        const std::string child_prefix = f.prefix + (f.last ? "  " : "| ");
        auto cs = children(f.id);
        for (std::size_t i = cs.size(); i-- > 0;)
            stack.push_back(Frame{cs[i], child_prefix,
                                  i + 1 == cs.size()});
    }
    return oss.str();
}

SpecTree
SpecTree::singlePath(double p, int e_t)
{
    dee_assert(e_t >= 0, "negative path budget");
    SpecTree tree;
    int cur = kOrigin;
    for (int i = 0; i < e_t; ++i)
        cur = tree.addChild(cur, true, p);
    return tree;
}

SpecTree
SpecTree::eager(double p, int e_t)
{
    dee_assert(e_t >= 0, "negative path budget");
    SpecTree tree;
    std::deque<int> frontier{kOrigin};
    int remaining = e_t;
    while (remaining > 0) {
        dee_assert(!frontier.empty(), "eager frontier exhausted");
        const int parent = frontier.front();
        frontier.pop_front();
        const int pc = tree.addChild(parent, true, p);
        frontier.push_back(pc);
        if (--remaining == 0)
            break;
        const int nc = tree.addChild(parent, false, 1.0 - p);
        frontier.push_back(nc);
        --remaining;
    }
    return tree;
}

SpecTree
SpecTree::deeGreedy(double p, int e_t)
{
    dee_assert(p >= 0.5 && p < 1.0, "deeGreedy needs p in [0.5, 1)");
    dee_assert(e_t >= 0, "negative path budget");

    // Tree allocation is the DEE tree-movement cost on the host side.
    const obs::hotspot::HotspotPhase hot_alloc(
        "tree", obs::hotspot::Phase::TreeMove);

    SpecTree tree;

    // Candidate children of already-included nodes, ordered by the rule
    // of Greatest Marginal Benefit: highest cp first; ties prefer the
    // predicted edge (deterministic, and matching Figure 1's choice of
    // extending the existing DEE path), then FIFO.
    struct Candidate
    {
        double cp;
        bool predictedEdge;
        std::uint64_t seq;
        int parent;
    };
    auto worse = [](const Candidate &a, const Candidate &b) {
        if (a.cp != b.cp)
            return a.cp < b.cp;
        if (a.predictedEdge != b.predictedEdge)
            return !a.predictedEdge; // predicted edge wins ties
        return a.seq > b.seq;
    };
    std::priority_queue<Candidate, std::vector<Candidate>,
                        decltype(worse)>
        queue(worse);

    std::uint64_t seq = 0;
    auto push_children = [&](int id) {
        const double cp = tree.node(id).cp;
        queue.push(Candidate{cp * p, true, seq++, id});
        queue.push(Candidate{cp * (1.0 - p), false, seq++, id});
    };

    push_children(kOrigin);
    double prev_cp = 1.0;
    for (int added = 0; added < e_t; ++added) {
        dee_assert(!queue.empty(), "greedy queue exhausted");
        const Candidate c = queue.top();
        queue.pop();
        // Greatest Marginal Benefit admits paths in non-increasing cp
        // order — the property Theorem 1's optimality proof rests on.
        DEE_INVARIANT(c.cp <= prev_cp + 1e-12,
                      "greedy admission order not monotone in cp");
        prev_cp = c.cp;
        const int id = tree.addChild(c.parent, c.predictedEdge,
                                     c.predictedEdge ? p : 1.0 - p);
        push_children(id);
    }
    return tree;
}

SpecTree
SpecTree::deeStatic(const TreeGeometry &geometry)
{
    const double p = geometry.p;
    SpecTree tree;

    // Main-Line chain of l predicted edges.
    std::vector<int> ml{kOrigin};
    int cur = kOrigin;
    for (int d = 1; d <= geometry.mainLineLength; ++d) {
        cur = tree.addChild(cur, true, p);
        ml.push_back(cur);
    }

    // DEE region: a side path splits off the branch ending ML path j-1
    // (the origin for j == 1), follows the not-predicted edge once, then
    // predicted edges down to depth h_DEE (Figure 2's triangle).
    const int h = geometry.deeHeight;
    for (int j = 1; j <= h; ++j) {
        int node = tree.addChild(ml[j - 1], false, 1.0 - p);
        for (int d = j + 1; d <= h; ++d)
            node = tree.addChild(node, true, p);
    }
    return tree;
}

SpecTree
SpecTree::deeStatic(double p, int e_t)
{
    return deeStatic(computeGeometry(p, e_t));
}

} // namespace dee
