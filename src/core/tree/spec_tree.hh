/**
 * @file
 * Speculation trees: the shape of a machine's execution window.
 *
 * Every speculative-execution strategy in the paper is a tree of branch
 * paths hanging below the earliest pending branch (Figure 1): each node
 * is one branch path; its "predicted" child continues in the predicted
 * direction of the branch ending it and its "not-predicted" child in the
 * other direction. A node's cumulative probability (cp) is the product
 * of local probabilities along its edges.
 *
 *  - Single Path (SP): a chain of predicted edges — branch prediction.
 *  - Eager Execution (EE): the complete binary tree — both paths of
 *    every pending branch.
 *  - DEE (theory): the E_T nodes with the greatest cp, built greedily by
 *    the rule of Greatest Marginal Benefit (optimal per Theorem 1).
 *  - DEE (static heuristic): the paper's Section 3.1 closed-form shape —
 *    an ML chain of l paths plus a triangular DEE region of height
 *    h_DEE, fixed at design time.
 *
 * The windowed ILP simulator walks any SpecTree against the actual
 * prediction-correctness outcomes to decide which dynamic code is inside
 * the window, which is what makes one simulator serve every model.
 */

#ifndef DEE_CORE_TREE_SPEC_TREE_HH
#define DEE_CORE_TREE_SPEC_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree/geometry.hh"

namespace dee
{

/**
 * Flat structure-of-arrays view of a SpecTree for the fast engine's
 * tree moves: child links, cumulative probabilities and Theorem-1
 * assignment ranks as plain arrays indexed by node id, so the per-root
 * coverage walk is two array loads per edge instead of a bounds-checked
 * node lookup. Absent edges hold kNoNode (-1).
 */
struct FlatSpecTree
{
    std::vector<std::int32_t> predChild;
    std::vector<std::int32_t> npredChild;
    std::vector<double> cp;
    std::vector<std::int32_t> rank; ///< empty unless ranks requested
    int maxDepth = 0;

    int
    child(int id, bool predicted_edge) const
    {
        return predicted_edge ? predChild[static_cast<std::size_t>(id)]
                              : npredChild[static_cast<std::size_t>(id)];
    }
};

/** One branch path in a speculation tree. */
struct TreeNode
{
    int parent = -1;        ///< Parent node index; -1 for the origin.
    int predChild = -1;     ///< Child along the predicted direction.
    int npredChild = -1;    ///< Child along the not-predicted direction.
    bool viaPredicted = true; ///< Edge type from the parent.
    int depth = 0;          ///< Origin is depth 0; paths start at 1.
    double cp = 1.0;        ///< Cumulative probability of being needed.
};

/** Marker for "no node". */
constexpr int kNoNode = -1;

/** Immutable-after-build speculation tree. Node 0 is the origin. */
class SpecTree
{
  public:
    /** Creates a tree containing only the origin. */
    SpecTree();

    /** Number of branch-path nodes (the origin is not counted). */
    int numPaths() const { return static_cast<int>(nodes_.size()) - 1; }

    static constexpr int kOrigin = 0;

    const TreeNode &node(int id) const;

    /**
     * Child of `id` along the predicted (true) or not-predicted (false)
     * direction; kNoNode if absent.
     */
    int child(int id, bool predicted_edge) const;

    /** Deepest path depth in the tree (0 for an origin-only tree). */
    int maxDepth() const;

    /**
     * Adds a child path. @param local_p local probability of the edge
     * (the predicted edge of a branch has local probability p, the
     * not-predicted edge 1-p).
     */
    int addChild(int parent, bool predicted_edge, double local_p);

    /**
     * Resource-assignment order (Figure 1's circled numbers): node ids
     * sorted by descending cp; ties broken toward predicted edges then
     * insertion order.
     */
    std::vector<int> assignmentOrder() const;

    /**
     * Per-node assignment rank (Figure 1's circled numbers): element
     * id is 1 for the first-assigned path, 2 for the next, ...; the
     * origin stays 0. Inverse of assignmentOrder(), used by render()
     * and by the speculation profiler's Theorem-1 attribution.
     */
    std::vector<int> assignmentRanks() const;

    /**
     * Walks outcome correctness from the origin: element d of the result
     * is the node covering the path at distance d+1 when the branches at
     * distances 0..d resolve as `correct[0..d]`, or kNoNode once the
     * walk leaves the tree (all later elements are kNoNode too).
     */
    std::vector<int> walk(const std::vector<bool> &correct) const;

    /** Multi-line ASCII rendering with cp and assignment ranks. */
    std::string render() const;

    /** Structure-of-arrays view for the fast engine (see FlatSpecTree).
     *  @param with_ranks also materialize assignmentRanks(). */
    FlatSpecTree flatten(bool with_ranks = false) const;

    // --- Builders --------------------------------------------------------

    /** SP: chain of e_t predicted edges. */
    static SpecTree singlePath(double p, int e_t);

    /**
     * EE: complete binary tree filled level by level until e_t paths
     * (partial levels fill predicted-edge first).
     */
    static SpecTree eager(double p, int e_t);

    /** DEE theory: greedy greatest-cp construction (optimal shape). */
    static SpecTree deeGreedy(double p, int e_t);

    /** DEE heuristic: the paper's closed-form static shape. */
    static SpecTree deeStatic(double p, int e_t);

    /** DEE heuristic from a precomputed geometry. */
    static SpecTree deeStatic(const TreeGeometry &geometry);

  private:
    std::vector<TreeNode> nodes_;
};

} // namespace dee

#endif // DEE_CORE_TREE_SPEC_TREE_HH
