#include "core/tree/cp_cost.hh"

#include <cmath>
#include <sstream>

namespace dee
{

DynamicCpCost
dynamicCpCost(const SpecTree &tree)
{
    DynamicCpCost cost;
    cost.cps = tree.numPaths();
    std::uint64_t depth_sum = 0;
    for (int i = 1; i <= tree.numPaths(); ++i)
        depth_sum += static_cast<std::uint64_t>(tree.node(i).depth);
    cost.fullRecomputeMults = depth_sum;
    cost.incrementalMults = static_cast<std::uint64_t>(cost.cps);
    if (cost.cps > 0) {
        cost.meanDepth = static_cast<double>(depth_sum) /
                         static_cast<double>(cost.cps);
        cost.sortComparisons = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(cost.cps) *
                      std::log2(static_cast<double>(cost.cps) + 1.0)));
    }
    return cost;
}

std::string
DynamicCpCost::render() const
{
    std::ostringstream oss;
    oss << "cps=" << cps << " meanDepth=" << meanDepth
        << " fullRecomputeMults/cycle=" << fullRecomputeMults
        << " incrementalMults/cycle=" << incrementalMults
        << " sortComparisons/cycle=" << sortComparisons;
    return oss.str();
}

} // namespace dee
