/**
 * @file
 * Internal contract between WindowSim::run() and its two forward-pass
 * kernels (the reference engine in window_sim.cc and the data-oriented
 * fast engine in fast_engine.cc).
 *
 * run() owns the shared prologue (predictor pass, control-dependence
 * join points) and epilogue (totals, resolve histogram, cycle
 * accounting, speculation profile, registry publishing). The kernels
 * own only the per-path forward loop: coverage walks, instruction
 * issue, branch resolution and tree movement. Both fill the same
 * ForwardCtx outputs and make profiler/tracer calls at the same
 * program points in the same order, which is what makes the engines
 * bit-exact — the property tests/test_engine_differential.cc enforces.
 */

#ifndef DEE_CORE_SIM_FORWARD_PASS_HH
#define DEE_CORE_SIM_FORWARD_PASS_HH

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/bit_matrix.hh"
#include "core/sim/window_sim.hh"
#include "obs/accounting.hh"
#include "obs/profile/profile.hh"
#include "obs/trace_event.hh"

namespace dee::sim_detail
{

/** Sentinel "not yet fetched". */
constexpr std::int64_t kNeverFetched =
    std::numeric_limits<std::int64_t>::max();

/**
 * Per-cycle issue-slot accounting for the limited-PE extension: finds
 * the earliest cycle >= ready with a free slot and claims it. Shared
 * verbatim between the engines so starvation evidence is identical.
 */
class IssueSlots
{
  public:
    /** @param starved when non-null, every fully-occupied cycle an
     *  instruction probed while waiting for a slot is appended —
     *  the resource-starvation evidence for cycle accounting. */
    explicit IssueSlots(int width,
                        std::vector<std::int64_t> *starved = nullptr)
        : width_(width), starved_(starved)
    {
    }

    std::int64_t
    claim(std::int64_t ready)
    {
        if (width_ == 0)
            return ready;
        std::int64_t t = std::max(ready, floor_);
        while (true) {
            auto &used = used_[t];
            if (used < width_) {
                ++used;
                return t;
            }
            if (starved_)
                starved_->push_back(t);
            ++t;
        }
    }

  private:
    int width_;
    std::int64_t floor_ = 0;
    std::unordered_map<std::int64_t, int> used_;
    std::vector<std::int64_t> *starved_;
};

/** A mispredicted branch still inside the static window's reach. */
struct PendingMispredict
{
    std::uint64_t pathIdx;
    DynIndex joinIdx; ///< End of its dynamic control scope.
    std::int64_t resolveTime;
    /**
     * Backward (loop) branches diverge: the wrong-path fetch stream does
     * not reconverge with the actual path before resolution, so code
     * after the branch is simply absent from the machine unless a
     * not-predicted-edge tree path (EE subtree / DEE side path) holds
     * it. Forward mispredicts reconverge at the join, so only their
     * dynamic control scope stalls.
     */
    bool divergent;
};

/**
 * Reusable per-run output storage. WindowSim::run() keeps one of these
 * per thread and rebinds the ForwardCtx output references to it, so
 * repeated runs (benchmark repetitions, figure sweeps) recycle
 * capacity instead of faulting in fresh pages every run. Both kernels
 * assign()/clear() every vector they touch, so no state leaks between
 * runs.
 */
struct RunArena
{
    std::vector<std::int64_t> exec;
    std::vector<std::int64_t> fetchTree;
    std::vector<std::int64_t> rootTime;
    std::vector<std::int64_t> resolve;
    std::vector<std::uint8_t> fetchSide;
    std::vector<std::int64_t> starvedCycles;
    std::vector<std::int32_t> decodedLat;
    std::vector<BranchPath> paths;
    std::vector<std::uint8_t> correct;
    std::vector<DynIndex> joinIdx;
    std::vector<DynIndex> nextOcc; ///< join-sweep scratch
};

/** Everything a forward-pass kernel reads and everything it must fill. */
struct ForwardCtx
{
    // --- Inputs (borrowed from WindowSim::run) ---------------------------
    const Trace &trace;
    const std::vector<BranchPath> &paths;
    const SpecTree &tree;
    const SimConfig &config;
    const std::vector<std::uint8_t> &correct; ///< per path; 1 if no branch
    const BitVec64 &correctBits;              ///< same set, packed
    const BitVec64 &ends;                     ///< endsInBranch per path
    const std::vector<DynIndex> &joinIdx;     ///< empty unless CD
    int windowReach;
    bool profiling;
    bool accounting;
    bool tracing;
    bool hot;
    obs::Tracer &tracer;
    obs::SpeculationProfile &profile; ///< recordAssignment() target
    /** Cycle-accounting ledger (non-null iff accounting): the kernels
     *  record each instruction's issue cycle as it is computed — the
     *  same values in the same trace order the epilogue's separate
     *  sweep over exec[] produced, fused to avoid re-reading it. */
    obs::SlotLedger *ledger;

    // --- Outputs (the epilogue's inputs; arena-backed references) --------
    std::vector<std::int64_t> &exec;      ///< issue cycle per instruction
    std::vector<std::int64_t> &fetchTree; ///< per path; kNeverFetched
    std::vector<std::int64_t> &rootTime;  ///< num_paths + 1 entries
    std::vector<std::int64_t> &resolve;   ///< per path
    std::vector<std::uint8_t> &fetchSide; ///< per path iff profiling
    std::vector<std::int64_t> &starvedCycles;
    /** Effective completion latency per instruction; the fast engine
     *  exports its decode so the epilogue skips re-deriving op
     *  classes. Empty from the reference engine. */
    std::vector<std::int32_t> &decodedLat;
    std::uint64_t sidePathFetches = 0;
};

/** The seed forward pass, kept as ground truth (window_sim.cc). */
void referenceForward(ForwardCtx &ctx);

/** The data-oriented SoA / bit-vector kernel (fast_engine.cc). */
void fastForward(ForwardCtx &ctx);

} // namespace dee::sim_detail

#endif // DEE_CORE_SIM_FORWARD_PASS_HH
