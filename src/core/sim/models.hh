/**
 * @file
 * The eight ILP models of Section 5.2, as a ready-to-run suite.
 *
 * Each constrained model is a (tree shape, control-dependency regime)
 * pair fed to WindowSim; Oracle is the unconstrained dataflow limit.
 * runModel() also performs steps 1-3 of the static tree heuristic when
 * asked: measure the predictor's characteristic accuracy p on the trace,
 * then size the tree from (p, E_T).
 */

#ifndef DEE_CORE_SIM_MODELS_HH
#define DEE_CORE_SIM_MODELS_HH

#include <string>
#include <vector>

#include "core/sim/window_sim.hh"

namespace dee
{

/** The models of Section 5.2. */
enum class ModelKind
{
    EE,       ///< Eager Execution (comparison)
    SP,       ///< Single Path / branch prediction (comparison)
    DEE,      ///< DEE alone, restrictive control dependencies
    SP_CD,    ///< SP + reduced control dependencies (comparison)
    DEE_CD,   ///< DEE + reduced control dependencies
    SP_CD_MF, ///< SP + minimal control dependencies (comparison)
    DEE_CD_MF,///< DEE + minimal control dependencies (the headline model)
    Oracle,   ///< EE, unlimited resources; not realizable
};

/** Paper-style name, e.g. "DEE-CD-MF". */
const char *modelName(ModelKind kind);

/** All eight, in the paper's listing order. */
std::vector<ModelKind> allModels();

/** The seven resource-constrained models (everything but Oracle). */
std::vector<ModelKind> constrainedModels();

/** True for the models that use a DEE-shaped tree. */
bool usesDeeTree(ModelKind kind);

/** Control-dependency regime of a model (meaningless for Oracle). */
CdModel cdModelOf(ModelKind kind);

/**
 * Window shape for a constrained model: SP chain, EE level tree, or the
 * static DEE heuristic tree for (p, e_t).
 */
SpecTree treeForModel(ModelKind kind, double p, int e_t);

/** Options shared across a model-suite run. */
struct ModelRunOptions
{
    int mispredictPenalty = 1;
    LatencyModel latency = LatencyModel::unit();
    bool gatherResolveStats = false;
    /** Track per-cycle issue counts (peak/mean occupancy). */
    bool gatherIssueStats = false;
    /** Fill SimResult::account (see SimConfig::gatherAccounting). */
    bool gatherAccounting = true;
    /** Fill SimResult::profile (see SimConfig::gatherProfile); also
     *  forced on by the Session --profile flag. */
    bool gatherProfile = false;
    /**
     * Workload label for profile scoping: the profile lands in
     * ProfileStore::global() under "<profileWorkload>.<model name>"
     * ("<model name>" alone when empty), so per-branch stats from
     * different workloads never conflate static ids.
     */
    std::string profileWorkload;
    /**
     * Characteristic accuracy for tree sizing; <= 0 means "measure it
     * from the trace with a clone of the predictor" (heuristic step 1).
     */
    double characteristicP = -1.0;
    /** Issue-width limit (0 = unlimited, the paper's assumption). */
    int peLimit = 0;
    /** Optional per-record load latencies from the cache model. */
    const std::vector<int> *loadLatencies = nullptr;
    /** Forward-pass kernel (see SimConfig::engine); defaults to the
     *  process-wide --engine / DEE_ENGINE selection. */
    Engine engine = selectedEngine();
};

/**
 * Measures the predictor's accuracy on the trace using a fresh clone
 * (heuristic step 1). Clamped into [0.5, 0.995] so tree geometry stays
 * well-defined even on degenerate traces.
 */
double characteristicAccuracy(const Trace &trace,
                              const BranchPredictor &predictor);

/**
 * Runs one model at one resource level.
 *
 * @param cfg required for the CD / CD-MF models; may be null otherwise.
 * @param e_t branch-path resource budget (ignored by Oracle).
 */
SimResult runModel(ModelKind kind, const Trace &trace, const Cfg *cfg,
                   BranchPredictor &predictor, int e_t,
                   const ModelRunOptions &options = {});

} // namespace dee

#endif // DEE_CORE_SIM_MODELS_HH
