/**
 * @file
 * Data-oriented fast simulation engine (PR 10's tentpole).
 *
 * Same semantics as the seed engine, restructured for the host machine:
 *
 *  - Decode once into a packed structure-of-arrays instruction stream
 *    (one flat op-class switch per record), so the issue loop touches
 *    8-byte decoded entries instead of 40-byte trace records and never
 *    calls opClass()/LatencyModel::of() again.
 *  - Register dataflow through a flat availability table (completion
 *    time of the last writer per architectural register, with an
 *    always-zero slot standing in for "no dependence" so the inner
 *    loop is branch-free on the register path).
 *  - Memory dataflow through a direct-address table when the touched
 *    address space is small, or an open-addressing hash otherwise —
 *    replacing the per-access node-allocating unordered_map.
 *  - Tree moves over the FlatSpecTree array view; per-path correctness
 *    and mispredict sets live in BitVec64 words (common/bit_matrix.hh)
 *    scanned with popcount/ctz in the shared epilogue.
 *  - Route-B mispredict stalls via a per-path sorted suffix-max over
 *    pending join points with a monotone cursor, replacing the
 *    per-instruction scan of the whole pending deque.
 *  - Scratch (walk state, stall tables, bypass spans) is hoisted into
 *    per-run arenas reused across every tree move.
 *
 * fastForward() is declared in forward_pass.hh next to its reference
 * twin; both are provably bit-exact (tests/test_engine_differential.cc).
 */

#ifndef DEE_CORE_SIM_FAST_ENGINE_HH
#define DEE_CORE_SIM_FAST_ENGINE_HH

#include <cstdint>

#include "core/sim/forward_pass.hh"
#include "obs/accounting.hh"

namespace dee::sim_detail
{

/** What the fused oracle pass hands back to oracleSim(). */
struct OracleSummary
{
    std::int64_t lastDone = 0;   ///< latest completion time
    std::uint64_t branches = 0;  ///< conditional-branch records
};

/**
 * Fused decode + dataflow + accounting sweep for oracleSim()'s fast
 * engine: one pass computes the dataflow-limit completion horizon and,
 * when @p ledger is non-null, issues each instruction's ready cycle
 * into it in trace order — the same evidence the reference engine's
 * separate second pass produces.
 */
OracleSummary fastOracle(const Trace &trace, const LatencyModel &latency,
                         const std::vector<int> *load_latencies,
                         obs::SlotLedger *ledger);

} // namespace dee::sim_detail

#endif // DEE_CORE_SIM_FAST_ENGINE_HH
