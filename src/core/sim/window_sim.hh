/**
 * @file
 * Windowed trace-driven ILP simulator (Section 5.1 of the paper).
 *
 * One engine serves every constrained model — EE, SP, DEE and their CD /
 * CD-MF variants — by superimposing a SpecTree (the window shape) on the
 * dynamic trace. Semantics, made precise:
 *
 * Trace & paths. The trace is the actual executed stream segmented into
 * branch paths. Resources are counted in branch paths (the tree has E_T
 * path nodes); PEs are implicitly unconstrained within covered paths,
 * as in the paper.
 *
 * Coverage (route A — the speculation hardware). With the window rooted
 * at path r, the actual path at distance d is covered iff walking the
 * tree from its origin — taking the predicted edge where the predictor
 * was right and the not-predicted edge where it was wrong — reaches a
 * node at depth d. Covered code is fetched at the root-arrival time and
 * may execute as soon as its flow dependencies (register and memory,
 * renaming / flow-only) are ready: unit latency by default. Passing a
 * not-predicted edge means the alternate state was held speculatively
 * (an EE subtree or a DEE side path), so no stall on that misprediction
 * is ever paid by that code — this is exactly DEE's mechanism.
 *
 * Tree movement. The root advances past path r once r's branch has
 * resolved and every instruction of r has executed; a misprediction adds
 * `mispredictPenalty` cycles (Levo's 1-cycle state copy-back). Actual-
 * path code already fetched stays fetched.
 *
 * Static-window execution (route B — CD models only). The CD and CD-MF
 * models presuppose the static instruction window of Section 4: the IQ
 * holds static code whose presence is invariant to branch directions, so
 * an instruction within the window's reach (maxDepth of the tree, in
 * branch paths, ahead of the root) may execute before its path is
 * covered by the tree — it must only wait, with the misprediction
 * penalty, for the resolution of mispredicted branches it is *totally
 * control dependent* on (exact transitive CDG from src/cfg). Join-point
 * code therefore flows past unpredictable branches, the paper's central
 * CD example. An instruction's execution time is the better of the two
 * routes.
 *
 * Branch resolution. Plain and CD models resolve branches serially
 * ("branches must still execute sequentially"); the MF (multiple flows)
 * variants resolve branches as soon as each branch executes.
 *
 * Oracle. oracleSim() ignores windows and control entirely: pure flow-
 * dependence dataflow height (the paper's "EE with unlimited resources").
 */

#ifndef DEE_CORE_SIM_WINDOW_SIM_HH
#define DEE_CORE_SIM_WINDOW_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bpred/bpred.hh"
#include "cfg/cfg.hh"
#include "core/sim/engine.hh"
#include "core/tree/spec_tree.hh"
#include "obs/accounting.hh"
#include "obs/profile/profile.hh"
#include "trace/trace.hh"

namespace dee
{

/** Control-dependency regime of a model. */
enum class CdModel
{
    Restrictive, ///< plain EE / SP / DEE
    Reduced,     ///< -CD: true control dependencies, serial branches
    Minimal,     ///< -CD-MF: true control dependencies, parallel branches
};

const char *cdModelName(CdModel cd);

/** Per-op-class latencies in cycles (paper default: all 1). */
struct LatencyModel
{
    int intAlu = 1;
    int load = 1;
    int store = 1;
    int branch = 1;
    int other = 1;

    int of(OpClass cls) const;

    /** All-ones, the paper's assumption. */
    static LatencyModel unit() { return LatencyModel{}; }

    /** A non-unit example point for the future-work ablation. */
    static LatencyModel realistic();
};

/** Simulator configuration. */
struct SimConfig
{
    CdModel cd = CdModel::Restrictive;
    /** Cycles lost on each misprediction (refetch / DEE copy-back). */
    int mispredictPenalty = 1;
    LatencyModel latency = LatencyModel::unit();
    /** Gather the where-do-mispredictions-resolve histogram (E6). */
    bool gatherResolveStats = false;
    /** Measure per-cycle issue counts (peak busy PEs — the paper's
     *  "<200 PEs at 100 branch paths" estimate). */
    bool gatherIssueStats = false;
    /**
     * Classify every issue-slot-cycle of the run into the closed
     * obs::SlotClass taxonomy (SimResult::account, registry paths
     * "acct.window.*"). Costs O(cycles) extra time and 5 bytes/cycle
     * transient memory; on by default because the simulation itself
     * dominates. The identity sum(classes) == PEs x cycles is checked
     * fatally at end-of-run.
     */
    bool gatherAccounting = true;
    /**
     * Collect the per-branch speculation profile (SimResult::profile;
     * see obs/profile/profile.hh). Also honored — regardless of this
     * flag — when obs::profilingRequested() is set, which is how the
     * Session --profile flag reaches every tool. Profiling implies
     * accounting (the ledger carries the squash attribution), and the
     * identity sum(per-site squashed) == squashed_spec is checked
     * fatally at end-of-run.
     */
    bool gatherProfile = false;
    /** ProfileStore scope the profile merges under; empty -> "window".
     *  Convention: "<workload>.<model>" so runs never conflate. */
    std::string profileScope;
    /** Metadata recorded in the profile (manifest grouping keys). */
    std::string profileWorkload;
    std::string profileModel;
    /**
     * Maximum instructions issued per cycle (the paper's future-work
     * "explicitly limited PE's"); 0 = unlimited, the paper's default
     * ("this implicitly limited the number of PE's, but not
     * explicitly").
     */
    int peLimit = 0;
    /**
     * Static-window (route B) reach in branch paths; 0 derives it from
     * the tree's path count. Set explicitly when the tree's node count
     * is not the machine's full resource budget (e.g. confidence-gated
     * DEE, whose side paths are not tree nodes).
     */
    int windowReachOverride = 0;
    /**
     * Optional per-dynamic-instruction load latencies (from the cache
     * model in src/mem); overrides latency.load per access when set.
     * Must outlive the simulator and have one entry per trace record.
     */
    const std::vector<int> *loadLatencies = nullptr;

    /**
     * Confidence-gated DEE (an exploration of the paper's Section 5.3
     * remark that below-average-accuracy branches should be "DEE'd
     * earlier"): instead of side paths on the first h_DEE main-line
     * branches, a side path attaches at *any* depth to a branch whose
     * profiled accuracy is below `threshold`, covering up to `sideLen`
     * further paths. For equal-resource comparisons pick `threshold`
     * so the expected number of gated branches per window matches the
     * static tree's side-path count. When `accuracy` is set, this
     * coverage rule replaces the tree's not-predicted edges (the tree
     * still supplies the main-line depth and the static-window reach).
     */
    struct ConfidenceDee
    {
        const std::vector<double> *accuracy = nullptr; ///< per-sid
        double threshold = 0.0;
        int sideLen = 0;
    };
    ConfidenceDee confidence;

    /**
     * Which forward-pass kernel runs the simulation: the data-oriented
     * fast engine or the seed reference engine. The two are bit-exact
     * (tests/test_engine_differential.cc); this only selects speed.
     * Defaults to the process-wide selection (--engine / DEE_ENGINE).
     */
    Engine engine = selectedEngine();
};

/**
 * Profiles per-static-branch accuracy of a predictor over a trace
 * (fresh clone; the confidence table for SimConfig::ConfidenceDee).
 * Branches never seen get accuracy 1.0.
 */
std::vector<double> profileBranchAccuracy(const Trace &trace,
                                          const BranchPredictor &pred);

/** Outcome of one windowed simulation. */
struct SimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double speedup = 0.0; ///< instructions / cycles (sequential == 1.0)

    std::uint64_t branches = 0;
    std::uint64_t mispredicted = 0;
    double predictionAccuracy = 0.0;

    /** Histogram over tree depth (distance from root, in branch paths)
     *  at which mispredicted branches resolved; index 0 == at the root.
     *  Only filled when gatherResolveStats. */
    std::vector<std::uint64_t> resolveDepthCounts;

    /** Fraction of mispredictions resolving at the root (depth 0). */
    double resolveAtRootFraction() const;

    /** Paths whose earliest (tree) fetch crossed a not-predicted edge —
     *  i.e. code held early by an EE subtree or DEE side path. */
    std::uint64_t sidePathFetches = 0;

    /** Most instructions issued in any single cycle (peak busy PEs);
     *  only filled when gatherIssueStats. The mean is `speedup`. */
    std::uint64_t peakIssue = 0;

    /** Closed slot-cycle account (valid() iff gatherAccounting was on
     *  and the run fit the ledger); see obs/accounting.hh. */
    obs::CycleAccount account;

    /** Per-branch speculation profile (filled when profiling was on;
     *  also merged into obs::ProfileStore::global()). */
    obs::SpeculationProfile profile;

    std::string render() const;
};

/**
 * Windowed ILP simulator.
 *
 * @param cfg may be null for CdModel::Restrictive; required (and used
 *            for exact total control dependencies) for Reduced/Minimal.
 */
class WindowSim
{
  public:
    WindowSim(const Trace &trace, SpecTree tree, const SimConfig &config,
              const Cfg *cfg = nullptr);

    /** Traces are large and held by reference: no temporaries. */
    WindowSim(Trace &&, SpecTree, const SimConfig &,
              const Cfg *cfg = nullptr) = delete;

    /** Runs the model; the predictor is reset() first. */
    SimResult run(BranchPredictor &predictor) const;

  private:
    const Trace &trace_;
    SpecTree tree_;
    SimConfig config_;
    const Cfg *cfg_;
};

/** Oracle: dataflow-limit speedup (flow dependencies only).
 *  @param load_latencies optional per-record load latencies (cache
 *         model), overriding latency.load per access.
 *  @param gather_accounting fill SimResult::account ("acct.oracle.*";
 *         the oracle never speculates, so its slots split between
 *         useful and the idle/fetch_stall residue).
 *  @param engine fast (fused single-pass kernel) or reference; both
 *         are bit-exact, defaulting to the process-wide selection. */
SimResult oracleSim(const Trace &trace,
                    LatencyModel latency = LatencyModel::unit(),
                    const std::vector<int> *load_latencies = nullptr,
                    bool gather_accounting = true,
                    Engine engine = selectedEngine());

} // namespace dee

#endif // DEE_CORE_SIM_WINDOW_SIM_HH
