/**
 * @file
 * Classic ILP limit studies (the paper's Section 1.2 background).
 *
 * Riseman & Foster's 1972 study — "The Inhibition of Potential
 * Parallelism by Conditional Jumps", the paper's reference [5] —
 * measured how dataflow parallelism grows as more conditional jumps
 * are bypassed eagerly: from ~1.7x with none to 25.65x (harmonic mean)
 * with infinitely many. limitStudy() reproduces that model on our
 * traces: an instruction may execute once its flow dependencies are
 * ready *and* all but the nearest `bypassed` dynamically-preceding
 * branches have resolved. bypassed = 0 is sequential-ish control; the
 * limit case is the Oracle of the DEE simulations.
 */

#ifndef DEE_CORE_SIM_LIMITS_HH
#define DEE_CORE_SIM_LIMITS_HH

#include <cstdint>
#include <optional>

#include "bpred/bpred.hh"
#include "cfg/cfg.hh"
#include "core/sim/window_sim.hh"
#include "trace/trace.hh"

namespace dee
{

/** Result of one Riseman-Foster point. */
struct LimitResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double speedup = 0.0;
};

/**
 * Eager-execution limit with a bounded number of bypassed branches.
 *
 * @param bypassed number of unresolved conditional branches an
 *        instruction may be ahead of (nullopt = unlimited, the oracle)
 */
LimitResult limitStudy(const Trace &trace,
                       std::optional<int> bypassed,
                       LatencyModel latency = LatencyModel::unit());

/** Lam & Wilson's unlimited-resources machine models (ISCA'92, the
 *  paper's reference [3] — "For comparison purposes, the SP variants
 *  are simulated herein, but with constrained resources"). */
enum class LwModel
{
    SP,       ///< prediction; a mispredict stalls everything after it
    SP_CD,    ///< stall only the mispredict's control scope; serial
              ///  branch resolution (single flow)
    SP_CD_MF, ///< as SP_CD with parallel branch resolution
};

const char *lwModelName(LwModel model);

/**
 * Unlimited-window Lam-Wilson simulation: no fetch or path-resource
 * constraints at all; only prediction outcomes, dynamic control
 * scopes, and branch-resolution ordering limit execution.
 *
 * @param cfg CFG of the generating program (for join points).
 * @param predictor reset() and replayed in trace order.
 */
LimitResult lamWilsonStudy(const Trace &trace, const Cfg &cfg,
                           LwModel model, BranchPredictor &predictor,
                           int mispredict_penalty = 1,
                           LatencyModel latency = LatencyModel::unit());

} // namespace dee

#endif // DEE_CORE_SIM_LIMITS_HH
