/**
 * @file
 * Simulation-engine selection: fast (data-oriented) vs. reference.
 *
 * PR 10 rewrote the WindowSim hot path into a structure-of-arrays /
 * bit-vector kernel (src/core/sim/fast_engine.cc). The original seed
 * implementation stays compiled in as the reference engine, and the two
 * are held bit-exact by tests/test_engine_differential.cc. Selection:
 *
 *   1. an explicit setSelectedEngine() call — the --engine flag
 *      (declared by obs::declareFlags on every tool) lands here;
 *   2. the DEE_ENGINE environment variable ("fast" / "reference");
 *   3. default: fast.
 *
 * A per-run override lives in SimConfig::engine, which defaults to
 * selectedEngine() at construction time; the differential harness sets
 * it explicitly to run both engines in one process.
 */

#ifndef DEE_CORE_SIM_ENGINE_HH
#define DEE_CORE_SIM_ENGINE_HH

#include <string>

namespace dee
{

/** Which WindowSim/oracle kernel executes the forward pass. */
enum class Engine
{
    Fast,      ///< data-oriented SoA / bit-vector kernel (default)
    Reference, ///< the seed implementation, kept as ground truth
};

/** Stable lower-case spelling: "fast" / "reference". */
const char *engineName(Engine engine);

/** Parses "fast" / "reference" into @p out; false on anything else. */
bool parseEngine(const std::string &text, Engine *out);

/** Process-wide engine: explicit set > DEE_ENGINE env > fast. */
Engine selectedEngine();

/** Overrides the process-wide engine (the --engine flag handler). */
void setSelectedEngine(Engine engine);

} // namespace dee

#endif // DEE_CORE_SIM_ENGINE_HH
