#include "core/sim/models.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/perf/perf.hh"

namespace dee
{

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::EE: return "EE";
      case ModelKind::SP: return "SP";
      case ModelKind::DEE: return "DEE";
      case ModelKind::SP_CD: return "SP-CD";
      case ModelKind::DEE_CD: return "DEE-CD";
      case ModelKind::SP_CD_MF: return "SP-CD-MF";
      case ModelKind::DEE_CD_MF: return "DEE-CD-MF";
      case ModelKind::Oracle: return "Oracle";
    }
    return "???";
}

std::vector<ModelKind>
allModels()
{
    return {ModelKind::EE, ModelKind::SP, ModelKind::DEE,
            ModelKind::SP_CD, ModelKind::DEE_CD, ModelKind::SP_CD_MF,
            ModelKind::DEE_CD_MF, ModelKind::Oracle};
}

std::vector<ModelKind>
constrainedModels()
{
    return {ModelKind::EE, ModelKind::SP, ModelKind::DEE,
            ModelKind::SP_CD, ModelKind::DEE_CD, ModelKind::SP_CD_MF,
            ModelKind::DEE_CD_MF};
}

bool
usesDeeTree(ModelKind kind)
{
    return kind == ModelKind::DEE || kind == ModelKind::DEE_CD ||
           kind == ModelKind::DEE_CD_MF;
}

CdModel
cdModelOf(ModelKind kind)
{
    switch (kind) {
      case ModelKind::SP_CD:
      case ModelKind::DEE_CD:
        return CdModel::Reduced;
      case ModelKind::SP_CD_MF:
      case ModelKind::DEE_CD_MF:
        return CdModel::Minimal;
      default:
        return CdModel::Restrictive;
    }
}

SpecTree
treeForModel(ModelKind kind, double p, int e_t)
{
    dee_assert(kind != ModelKind::Oracle, "Oracle has no window tree");
    if (kind == ModelKind::EE)
        return SpecTree::eager(p, e_t);
    if (usesDeeTree(kind))
        return SpecTree::deeStatic(p, e_t);
    return SpecTree::singlePath(p, e_t);
}

double
characteristicAccuracy(const Trace &trace,
                       const BranchPredictor &predictor)
{
    auto probe = predictor.clone();
    const AccuracyReport report = measureAccuracy(trace, *probe);
    return std::clamp(report.accuracy, 0.5, 0.995);
}

SimResult
runModel(ModelKind kind, const Trace &trace, const Cfg *cfg,
         BranchPredictor &predictor, int e_t,
         const ModelRunOptions &options)
{
    // Every model run — Oracle included — is metered under the same
    // "<workload>.<model>" scope the profiler uses, so perf.* lines up
    // with prof.* in reports.
    const std::string scope =
        options.profileWorkload.empty()
            ? std::string(modelName(kind))
            : options.profileWorkload + "." + modelName(kind);
    obs::perf::ThroughputMeter meter(scope);

    if (kind == ModelKind::Oracle) {
        SimResult result =
            oracleSim(trace, options.latency, options.loadLatencies,
                      options.gatherAccounting, options.engine);
        meter.addInstructions(result.instructions);
        meter.addCycles(result.cycles);
        return result;
    }

    double p = options.characteristicP;
    if (p <= 0.0)
        p = characteristicAccuracy(trace, predictor);

    const SpecTree tree = treeForModel(kind, p, e_t);

    SimConfig config;
    config.cd = cdModelOf(kind);
    config.mispredictPenalty = options.mispredictPenalty;
    config.latency = options.latency;
    config.gatherResolveStats = options.gatherResolveStats;
    config.gatherIssueStats = options.gatherIssueStats;
    config.gatherAccounting = options.gatherAccounting;
    config.gatherProfile = options.gatherProfile;
    config.profileModel = modelName(kind);
    config.profileScope = scope;
    config.profileWorkload = options.profileWorkload;
    config.peLimit = options.peLimit;
    config.loadLatencies = options.loadLatencies;
    config.engine = options.engine;

    WindowSim sim(trace, tree, config, cfg);
    SimResult result = sim.run(predictor);
    meter.addInstructions(result.instructions);
    meter.addCycles(result.cycles);
    return result;
}

} // namespace dee
