#include "core/sim/engine.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "obs/session.hh"

namespace dee
{

namespace
{

Engine
engineFromEnv()
{
    const char *env = std::getenv("DEE_ENGINE");
    if (env == nullptr || *env == '\0')
        return Engine::Fast;
    Engine engine;
    if (!parseEngine(env, &engine))
        dee_fatal("DEE_ENGINE='", env, "' (expected: fast, reference)");
    return engine;
}

Engine &
globalEngine()
{
    static Engine engine = engineFromEnv();
    return engine;
}

/** The --engine flag (obs::declareFlags) routes here; empty = unset. */
void
applyEngineFlag(const std::string &value)
{
    if (value.empty())
        return;
    Engine engine;
    if (!parseEngine(value, &engine))
        dee_fatal("--engine '", value, "' (expected: fast, reference)");
    setSelectedEngine(engine);
}

/** Hook into obs at static-init time: this TU is always linked when
 *  WindowSim is (selectedEngine() backs SimConfig's default), so every
 *  simulating tool gets the flag wired without obs depending on sim. */
const bool g_flag_hook_installed = [] {
    obs::setEngineFlagHandler(&applyEngineFlag);
    return true;
}();

} // namespace

const char *
engineName(Engine engine)
{
    switch (engine) {
      case Engine::Fast: return "fast";
      case Engine::Reference: return "reference";
    }
    return "???";
}

bool
parseEngine(const std::string &text, Engine *out)
{
    if (text == "fast") {
        *out = Engine::Fast;
        return true;
    }
    if (text == "reference") {
        *out = Engine::Reference;
        return true;
    }
    return false;
}

Engine
selectedEngine()
{
    (void)g_flag_hook_installed;
    return globalEngine();
}

void
setSelectedEngine(Engine engine)
{
    globalEngine() = engine;
}

} // namespace dee
