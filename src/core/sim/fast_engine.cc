#include "core/sim/fast_engine.hh"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/hotspot/hotspot.hh"
#include "obs/trace_event.hh"

namespace dee::sim_detail
{

namespace
{

/**
 * Register-availability slots: architectural registers 1..31 map to
 * themselves; a missing source reads the always-zero slot (the max
 * identity, exactly the reference's "no dependence contributes 0");
 * a missing destination writes a sink slot nobody reads.
 */
constexpr std::size_t kZeroSlot = kNumRegs;
constexpr std::size_t kSinkSlot = kNumRegs + 1;
constexpr std::size_t kNumSlots = kNumRegs + 2;

inline std::uint8_t
srcSlot(RegId r)
{
    return (r == kNoReg || r == kZeroReg)
               ? static_cast<std::uint8_t>(kZeroSlot)
               : r;
}

inline std::uint8_t
dstSlot(RegId r)
{
    return (r == kNoReg || r == kZeroReg)
               ? static_cast<std::uint8_t>(kSinkSlot)
               : r;
}

/**
 * Packed decoded instruction: the issue loop's entire working set per
 * instruction (plus the address array for memory ops). The single
 * decode-time op-class switch replaces the three opClass()/of() calls
 * the seed engine made per dynamic instruction.
 */
struct DecodedInstr
{
    std::int32_t lat;  ///< effective completion latency
    std::uint8_t src1; ///< availability slot of rs1
    std::uint8_t src2; ///< availability slot of rs2
    std::uint8_t dst;  ///< kSinkSlot when the result is untracked
    std::uint8_t mem;  ///< 0 none, 1 load, 2 store
};
static_assert(sizeof(DecodedInstr) == 8, "issue loop wants 8B entries");

/** splitmix64 finalizer — full-avalanche address hashing. */
inline std::uint64_t
mixAddr(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Last-store completion time per memory address. Value 0 means "no
 * prior store" — the identity for the dataflow max, so lookups never
 * branch on presence. Dense direct-address table when the workload
 * touches a small address range (the synthetic workloads index small
 * arrays); open-addressing linear-probe hash otherwise, sized to a
 * load factor <= 1/2.
 */
class MemAvail
{
  public:
    void
    init(std::uint64_t mem_ops, std::uint64_t max_addr)
    {
        // Reset for arena reuse; assign() below recycles capacity.
        dense_.clear();
        keys_.clear();
        vals_.clear();
        used_.clear();
        mask_ = 0;
        if (mem_ops == 0)
            return;
        constexpr std::uint64_t kDenseCap = std::uint64_t{1} << 20;
        if (max_addr < kDenseCap &&
            max_addr <= 8 * mem_ops + 1024) {
            dense_.assign(max_addr + 1, 0);
            return;
        }
        std::uint64_t cap = 16;
        while (cap < 2 * mem_ops)
            cap <<= 1;
        mask_ = cap - 1;
        keys_.assign(cap, 0);
        vals_.assign(cap, 0);
        used_.assign(cap, 0);
    }

    std::int64_t
    get(std::uint64_t addr) const
    {
        if (!dense_.empty())
            return dense_[addr];
        std::uint64_t h = mixAddr(addr) & mask_;
        while (used_[h] != 0) {
            if (keys_[h] == addr)
                return vals_[h];
            h = (h + 1) & mask_;
        }
        return 0;
    }

    void
    put(std::uint64_t addr, std::int64_t avail)
    {
        if (!dense_.empty()) {
            dense_[addr] = avail;
            return;
        }
        std::uint64_t h = mixAddr(addr) & mask_;
        while (used_[h] != 0) {
            if (keys_[h] == addr) {
                vals_[h] = avail;
                return;
            }
            h = (h + 1) & mask_;
        }
        used_[h] = 1;
        keys_[h] = addr;
        vals_[h] = avail;
    }

  private:
    std::vector<std::int64_t> dense_;
    std::vector<std::uint64_t> keys_;
    std::vector<std::int64_t> vals_;
    std::vector<std::uint8_t> used_;
    std::uint64_t mask_ = 0;
};

/** Decode output: the SoA stream plus what MemAvail sizing needs. */
struct DecodeInfo
{
    std::uint64_t memOps = 0;
    std::uint64_t maxAddr = 0;
};

/**
 * Per-opcode decode tables: latency and memory class resolved by two
 * array loads instead of a per-record class switch. Values follow
 * LatencyModel::of() exactly (loads may be overridden per record by
 * config.loadLatencies in the decode loop).
 */
struct DecodeTables
{
    std::array<std::int32_t, 256> lat;
    std::array<std::uint8_t, 256> mem; ///< 0 none, 1 load, 2 store

    explicit DecodeTables(const LatencyModel &lm)
    {
        for (std::size_t k = 0; k < 256; ++k) {
            std::int32_t l;
            std::uint8_t m = 0;
            switch (opClass(static_cast<Opcode>(k))) {
              case OpClass::IntAlu:
                l = lm.intAlu;
                break;
              case OpClass::Load:
                l = lm.load;
                m = 1;
                break;
              case OpClass::Store:
                l = lm.store;
                m = 2;
                break;
              case OpClass::CondBranch:
              case OpClass::Jump:
                l = lm.branch;
                break;
              default:
                l = lm.other;
                break;
            }
            lat[k] = l;
            mem[k] = m;
        }
    }
};

DecodeInfo
decodeTrace(const Trace &trace, const SimConfig &config,
            std::vector<DecodedInstr> &dec,
            std::vector<std::uint64_t> &addrs,
            std::vector<std::int32_t> &lat_out)
{
    const auto &records = trace.records;
    const std::uint64_t n = records.size();
    dec.resize(n);
    addrs.assign(n, 0);
    lat_out.resize(n);
    DecodeInfo info;
    const std::vector<int> *load_lat = config.loadLatencies;
    const DecodeTables tabs(config.latency);
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceRecord &rec = records[i];
        const auto op = static_cast<std::uint8_t>(rec.op);
        DecodedInstr d;
        d.src1 = srcSlot(rec.rs1);
        d.src2 = srcSlot(rec.rs2);
        d.dst = dstSlot(rec.rd);
        d.mem = tabs.mem[op];
        d.lat = tabs.lat[op];
        if (d.mem == 1 && load_lat != nullptr)
            d.lat = (*load_lat)[i];
        dec[i] = d;
        lat_out[i] = d.lat;
        if (d.mem != 0) {
            addrs[i] = rec.memAddr;
            ++info.memOps;
            info.maxAddr = std::max(info.maxAddr, rec.memAddr);
        }
    }
    return info;
}

/**
 * Closed-form coverage-walk plan. Chain-shaped trees (SP) and
 * DEE-static-shaped trees (an ML chain with one not-predicted side
 * chain per ML node, the side chains themselves free of not-predicted
 * edges) admit a closed form: the walk from root r follows correct
 * predictions down the ML, may cross exactly one mispredict into a
 * side chain, and dies at the second bad path. Given nm[] ("next path
 * the walk cannot step across"), each walk collapses to at most two
 * contiguous range relaxations — and since covered ranges always
 * attach to the already-fetched prefix, a frontier cursor makes the
 * whole run O(paths + fetches) instead of O(paths x walk depth).
 * Trees with deeper not-predicted structure (EE subtrees, greedy DEE
 * shapes that branch off side paths) keep the generic walk.
 */
struct WalkPlan
{
    bool closedForm = false;
    std::vector<std::int32_t> mlNodes;  ///< node id per ML depth; [0]=origin
    std::vector<std::uint32_t> sideLen; ///< side-chain nodes per ML depth
    std::vector<std::uint32_t> sideOff; ///< offsets into sideNodes
    std::vector<std::int32_t> sideNodes; ///< concatenated side-chain ids
};

void
buildWalkPlan(const FlatSpecTree &flat, WalkPlan &plan)
{
    plan.closedForm = false;
    plan.mlNodes.clear();
    plan.sideLen.clear();
    plan.sideOff.clear();
    plan.sideNodes.clear();
    const std::size_t num_nodes = flat.predChild.size();
    if (num_nodes == 0)
        return;
    std::int32_t node = SpecTree::kOrigin;
    plan.mlNodes.push_back(node);
    while (flat.predChild[static_cast<std::size_t>(node)] != kNoNode &&
           plan.mlNodes.size() <= num_nodes) {
        node = flat.predChild[static_cast<std::size_t>(node)];
        plan.mlNodes.push_back(node);
    }
    for (const std::int32_t ml : plan.mlNodes) {
        plan.sideOff.push_back(
            static_cast<std::uint32_t>(plan.sideNodes.size()));
        std::uint32_t len = 0;
        for (std::int32_t s =
                 flat.npredChild[static_cast<std::size_t>(ml)];
             s != kNoNode;
             s = flat.predChild[static_cast<std::size_t>(s)]) {
            if (flat.npredChild[static_cast<std::size_t>(s)] != kNoNode)
                return; // walks may cross twice: generic walk only
            plan.sideNodes.push_back(s);
            ++len;
            if (plan.sideNodes.size() > num_nodes)
                return; // malformed tree; stay on the generic walk
        }
        plan.sideLen.push_back(len);
    }
    plan.closedForm = true;
}

/**
 * Per-thread kernel scratch, recycled across runs: repeated cells
 * (benchmark repetitions, figure sweeps) reuse warmed-up capacity
 * instead of faulting fresh pages from the allocator every run. Every
 * field is cleared or assign()ed before use below.
 */
struct FastScratch
{
    std::vector<DecodedInstr> dec;
    std::vector<std::uint64_t> addrs;
    std::vector<std::uint64_t> bypassPool;
    std::vector<std::uint32_t> bypBegin;
    std::vector<std::uint32_t> bypEnd;
    std::vector<PendingMispredict> pending;
    std::vector<std::uint64_t> crossed;
    std::vector<std::pair<DynIndex, std::int64_t>> nd;
    std::vector<std::int64_t> ndSuffix;
    std::vector<std::uint64_t> nm; ///< next-uncrossable-path index
    WalkPlan plan;
    MemAvail mem;
};

} // namespace

void
fastForward(ForwardCtx &ctx)
{
    static thread_local FastScratch scratch;
    const auto &records = ctx.trace.records;
    const std::uint64_t n = records.size();
    const std::vector<BranchPath> &paths = ctx.paths;
    const std::uint64_t num_paths = paths.size();
    const SimConfig &config = ctx.config;
    const int window_reach = ctx.windowReach;
    const int penalty = config.mispredictPenalty;
    const bool use_cd = config.cd != CdModel::Restrictive;
    const bool serial_branches = config.cd != CdModel::Minimal;
    const bool use_confidence = config.confidence.accuracy != nullptr;
    const bool profiling = ctx.profiling;
    const bool accounting = ctx.accounting;
    const bool tracing = ctx.tracing;
    const bool hot = ctx.hot;
    obs::Tracer &tracer = ctx.tracer;
    obs::SpeculationProfile &profile = ctx.profile;
    const std::vector<std::uint8_t> &correct = ctx.correct;
    const std::vector<DynIndex> &join_idx = ctx.joinIdx;
    obs::SlotLedger *const ledger = ctx.ledger;
    const int branch_lat = config.latency.of(OpClass::CondBranch);

    // --- Decode into the SoA stream (exported to the epilogue) ----------
    std::vector<DecodedInstr> &dec = scratch.dec;
    std::vector<std::uint64_t> &addrs = scratch.addrs;
    DecodeInfo mem_info;
    {
        // Decode steers what enters the window, so it samples as fetch.
        const obs::hotspot::HotspotPhase hot_decode(
            hot, "window", obs::hotspot::Phase::Fetch);
        mem_info = decodeTrace(ctx.trace, config, dec, addrs,
                               ctx.decodedLat);
    }

    // --- Per-run state (SoA) --------------------------------------------
    std::vector<std::int64_t> &exec = ctx.exec;
    exec.assign(n, 0);
    std::vector<std::int64_t> &fetch_tree = ctx.fetchTree;
    fetch_tree.assign(num_paths, kNeverFetched);
    std::vector<std::int64_t> &root_time = ctx.rootTime;
    root_time.assign(num_paths + 1, 0);
    std::vector<std::int64_t> &resolve = ctx.resolve;
    resolve.assign(num_paths, 0);
    std::vector<std::uint8_t> &fetch_side = ctx.fetchSide;
    fetch_side.assign(profiling ? num_paths : 0, 0);

    // Bypass sets (mispredicted paths crossed via a not-predicted edge
    // on the fetching walk) as spans into one append-only pool — each
    // path's span is written at most once, so no per-path vectors.
    std::vector<std::uint64_t> &bypass_pool = scratch.bypassPool;
    bypass_pool.clear();
    std::vector<std::uint32_t> &byp_begin = scratch.bypBegin;
    byp_begin.assign(num_paths, 0);
    std::vector<std::uint32_t> &byp_end = scratch.bypEnd;
    byp_end.assign(num_paths, 0);

    // Flat tree view for the coverage walks.
    const FlatSpecTree flat =
        ctx.tree.flatten(profiling && !use_confidence);

    std::array<std::int64_t, kNumSlots> reg_avail{};
    MemAvail &mem = scratch.mem;
    mem.init(mem_info.memOps, mem_info.maxAddr);

    // Pending mispredicts as a vector + head cursor (front-retirement
    // only, preserving the reference's blocked-front semantics).
    std::vector<PendingMispredict> &pending = scratch.pending;
    pending.clear();
    std::size_t pending_head = 0;
    std::int64_t last_resolve = -1;
    const bool pe_limited = config.peLimit > 0;
    IssueSlots slots(config.peLimit,
                     accounting && pe_limited ? &ctx.starvedCycles
                                              : nullptr);

    // Per-tree-move scratch arenas, hoisted out of the root loop.
    std::vector<std::uint64_t> &crossed = scratch.crossed;
    std::vector<std::pair<DynIndex, std::int64_t>> &nd = scratch.nd;
    std::vector<std::int64_t> &nd_suffix = scratch.ndSuffix;

    // Route-B stall tables, cached across tree moves: the pending set
    // only changes on retirement or a new mispredict, and the bypass
    // filter only bites on the rare side-path-covered root, so most
    // paths reuse the previous tables verbatim.
    std::int64_t stall_div = 0;
    std::size_t nd_size = 0;
    bool stall_valid = false;

    // Closed-form walk tables (chain / DEE-static shapes only).
    WalkPlan &plan = scratch.plan;
    if (!use_confidence)
        buildWalkPlan(flat, plan);
    else
        plan.closedForm = false;
    std::vector<std::uint64_t> &nm = scratch.nm;
    std::uint64_t frontier = 0; ///< fetched set is exactly [0, frontier]
    if (plan.closedForm) {
        // nm[k]: first path >= k the walk cannot step across (not a
        // branch, or mispredicted).
        nm.assign(num_paths + 1, num_paths);
        for (std::uint64_t k = num_paths; k-- > 0;) {
            nm[k] =
                (paths[k].endsInBranch && correct[k]) ? nm[k + 1] : k;
        }
    }

    for (std::uint64_t r = 0; r < num_paths; ++r) {
        const std::int64_t now = root_time[r];

        // Coverage walk from this root position: relax fetch times of
        // every covered path. Already-fetched code stays fetched (min).
        if (now < fetch_tree[r])
            fetch_tree[r] = now; // distance 0: always covered
        if (use_confidence) {
            const obs::hotspot::HotspotPhase hot_fetch(
                hot, "window", obs::hotspot::Phase::Fetch);
            // Confidence-gated coverage: follow correct predictions to
            // the ML depth; one low-confidence mispredict may be
            // crossed, extending coverage by sideLen paths.
            const int ml_depth = flat.maxDepth;
            crossed.clear();
            std::int64_t limit = ml_depth;
            for (std::uint64_t d = 0;
                 r + d + 1 < num_paths &&
                 static_cast<std::int64_t>(d) < limit;
                 ++d) {
                if (!paths[r + d].endsInBranch)
                    break;
                if (!correct[r + d]) {
                    if (!crossed.empty())
                        break; // only one mispredict deep, like DEE
                    const TraceRecord &b =
                        records[paths[r + d].branchIndex()];
                    const double acc =
                        b.sid < config.confidence.accuracy->size()
                            ? (*config.confidence.accuracy)[b.sid]
                            : 1.0;
                    if (acc >= config.confidence.threshold)
                        break; // confident branch: no side path here
                    crossed.push_back(r + d);
                    limit = static_cast<std::int64_t>(d) +
                            config.confidence.sideLen + 1;
                }
                if (now < fetch_tree[r + d + 1]) {
                    fetch_tree[r + d + 1] = now;
                    if (profiling)
                        fetch_side[r + d + 1] =
                            crossed.empty() ? 0 : 1;
                    if (!crossed.empty()) {
                        ++ctx.sidePathFetches;
                        DEE_INVARIANT(crossed.front() >= r &&
                                          crossed.back() <= r + d,
                                      "bypass set escapes its walk");
                        byp_begin[r + d + 1] = static_cast<std::uint32_t>(
                            bypass_pool.size());
                        bypass_pool.insert(bypass_pool.end(),
                                           crossed.begin(),
                                           crossed.end());
                        byp_end[r + d + 1] = static_cast<std::uint32_t>(
                            bypass_pool.size());
                        dee_trace_event_if(
                            tracing, tracer, "sim.side_path_fetch", 'i', now,
                            "path",
                            static_cast<std::int64_t>(r + d + 1),
                            "root", static_cast<std::int64_t>(r));
                    }
                }
            }
        } else if (plan.closedForm) {
            const obs::hotspot::HotspotPhase hot_fetch(
                hot, "window", obs::hotspot::Phase::Fetch);
            // ML segment: correct steps down the main line cover paths
            // r+1 .. min(nm[r], r + ML length, last path). Paths at or
            // below the frontier were fetched by an earlier (never
            // later) root, so only the fresh suffix needs touching.
            const std::uint64_t j = nm[r];
            const std::uint64_t ml_len = plan.mlNodes.size() - 1;
            const std::uint64_t hi =
                std::min({j, r + ml_len, num_paths - 1});
            for (std::uint64_t x = std::max(r + 1, frontier + 1);
                 x <= hi; ++x) {
                fetch_tree[x] = now;
                if (profiling) {
                    fetch_side[x] = 0;
                    const auto node = static_cast<std::size_t>(
                        plan.mlNodes[x - r]);
                    profile.recordAssignment(
                        records[paths[x - 1].branchIndex()].sid,
                        flat.cp[node], flat.rank[node]);
                }
            }
            if (hi > frontier)
                frontier = hi;
            // Side segment: the walk crosses the first mispredict if
            // it is a branch within ML reach and that ML depth has a
            // side chain, then follows correct steps along the chain.
            if (j + 1 < num_paths && j - r <= ml_len &&
                paths[j].endsInBranch && !correct[j] &&
                plan.sideLen[j - r] != 0) {
                const std::size_t dc = j - r;
                const std::uint64_t slen = plan.sideLen[dc];
                const std::uint64_t hi_s =
                    std::min({j + slen, nm[j + 1], num_paths - 1});
                for (std::uint64_t x = std::max(j + 1, frontier + 1);
                     x <= hi_s; ++x) {
                    fetch_tree[x] = now;
                    if (profiling) {
                        fetch_side[x] = 1;
                        const auto node = static_cast<std::size_t>(
                            plan.sideNodes[plan.sideOff[dc] +
                                           static_cast<std::uint32_t>(
                                               x - j - 1)]);
                        profile.recordAssignment(
                            records[paths[x - 1].branchIndex()].sid,
                            flat.cp[node], flat.rank[node]);
                    }
                    ++ctx.sidePathFetches;
                    byp_begin[x] = static_cast<std::uint32_t>(
                        bypass_pool.size());
                    bypass_pool.push_back(j);
                    byp_end[x] = static_cast<std::uint32_t>(
                        bypass_pool.size());
                    dee_trace_event_if(
                        tracing, tracer, "sim.side_path_fetch", 'i',
                        now, "path", static_cast<std::int64_t>(x),
                        "root", static_cast<std::int64_t>(r));
                }
                if (hi_s > frontier)
                    frontier = hi_s;
            }
        } else {
            const obs::hotspot::HotspotPhase hot_fetch(
                hot, "window", obs::hotspot::Phase::Fetch);
            int node = SpecTree::kOrigin;
            crossed.clear();
            // The walk relaxes fetch times of paths r+d+1, so it must
            // stop at the last path: a cap-truncated trace can end in
            // a branch, making even the final path endsInBranch.
            for (std::uint64_t d = 0; r + d + 1 < num_paths; ++d) {
                if (!paths[r + d].endsInBranch)
                    break;
                node = flat.child(node, correct[r + d] != 0);
                if (node == kNoNode)
                    break;
                if (!correct[r + d])
                    crossed.push_back(r + d);
                if (now < fetch_tree[r + d + 1]) {
                    fetch_tree[r + d + 1] = now;
                    if (profiling) {
                        fetch_side[r + d + 1] =
                            crossed.empty() ? 0 : 1;
                        // Theorem-1 attribution at assignment time:
                        // the covering node's cumulative probability
                        // and resource-assignment rank, charged to
                        // the branch the path hangs off.
                        profile.recordAssignment(
                            records[paths[r + d].branchIndex()].sid,
                            flat.cp[static_cast<std::size_t>(node)],
                            flat.rank[static_cast<std::size_t>(node)]);
                    }
                    if (!crossed.empty()) {
                        ++ctx.sidePathFetches;
                        DEE_INVARIANT(crossed.front() >= r &&
                                          crossed.back() <= r + d,
                                      "bypass set escapes its walk");
                        byp_begin[r + d + 1] = static_cast<std::uint32_t>(
                            bypass_pool.size());
                        bypass_pool.insert(bypass_pool.end(),
                                           crossed.begin(),
                                           crossed.end());
                        byp_end[r + d + 1] = static_cast<std::uint32_t>(
                            bypass_pool.size());
                        dee_trace_event_if(
                            tracing, tracer, "sim.side_path_fetch", 'i', now,
                            "path",
                            static_cast<std::int64_t>(r + d + 1),
                            "root", static_cast<std::int64_t>(r));
                    }
                }
            }
        }

        // Code at the root is never fetched later than the root's own
        // arrival: coverage walks only ever relax fetch times.
        DEE_INVARIANT(fetch_tree[r] <= now, "path ", r,
                      " fetched after its root time");

        // Retire mispredicts whose window reach or control scope ended
        // (divergent ones stall until resolution wherever they are, so
        // only the reach bound retires them). Front-retirement only: a
        // blocked front entry keeps every later entry live, exactly as
        // the reference deque does.
        while (pending_head < pending.size() &&
               (pending[pending_head].pathIdx + window_reach <= r ||
                (!pending[pending_head].divergent &&
                 pending[pending_head].joinIdx <= paths[r].begin))) {
            ++pending_head;
            stall_valid = false;
        }

        // Route-B stall precomputation for this path: divergent
        // mispredicts stall every instruction; non-divergent ones only
        // instructions before their join, so sort them by join point
        // and keep a suffix max of (resolve + penalty). The issue loop
        // then reads the stall in O(1) with a monotone cursor instead
        // of rescanning the pending set per instruction.
        const bool has_bypass =
            use_cd && byp_end[r] > byp_begin[r];
        if (use_cd && (!stall_valid || has_bypass)) {
            stall_div = 0;
            nd_size = 0;
            if (pending_head < pending.size()) {
                nd.clear();
                const std::uint32_t bb = byp_begin[r];
                const std::uint32_t be = byp_end[r];
                for (std::size_t j = pending_head; j < pending.size();
                     ++j) {
                    const PendingMispredict &m = pending[j];
                    bool bypassed = false;
                    for (std::uint32_t q = bb; q < be; ++q) {
                        if (bypass_pool[q] == m.pathIdx) {
                            bypassed = true;
                            break;
                        }
                    }
                    if (bypassed)
                        continue; // held by a side path / EE subtree
                    if (m.divergent) {
                        stall_div = std::max(stall_div,
                                             m.resolveTime + penalty);
                    } else {
                        nd.emplace_back(m.joinIdx,
                                        m.resolveTime + penalty);
                    }
                }
                std::sort(nd.begin(), nd.end());
                nd_size = nd.size();
                nd_suffix.resize(nd_size);
                std::int64_t running = 0;
                for (std::size_t j = nd_size; j-- > 0;) {
                    running = std::max(running, nd[j].second);
                    nd_suffix[j] = running;
                }
            }
            // A bypass-filtered build is specific to this path; an
            // unfiltered one keeps serving until the set changes.
            stall_valid = !has_bypass;
        }

        // Execute this path's instructions (trace order; dependencies
        // always point backward, so their availability is final).
        const std::int64_t fetch_a = fetch_tree[r];
        const std::int64_t fetch_b =
            root_time[r > static_cast<std::uint64_t>(window_reach)
                          ? r - window_reach
                          : 0];
        std::int64_t done = now;
        {
            const obs::hotspot::HotspotPhase hot_issue(
                hot, "window", obs::hotspot::Phase::Issue);
            std::size_t nd_lo = 0;
            const DynIndex pend_i = paths[r].end;
            // Loop-unswitched on the loop-invariant route-B flag: the
            // non-CD models (EE / SP / DEE) pay nothing for the
            // reconvergent-window machinery.
            if (use_cd) {
                for (DynIndex i = paths[r].begin; i < pend_i; ++i) {
                    const DecodedInstr d = dec[i];

                    std::int64_t data_ready = reg_avail[d.src1];
                    const std::int64_t a2 = reg_avail[d.src2];
                    if (a2 > data_ready)
                        data_ready = a2;
                    if (d.mem != 0) {
                        const std::int64_t am = mem.get(addrs[i]);
                        if (am > data_ready)
                            data_ready = am;
                    }

                    // Route A: speculation-tree coverage.
                    std::int64_t t =
                        fetch_a > data_ready ? fetch_a : data_ready;

                    // Route B: reconvergent-window CD execution (see
                    // the reference engine for the full rationale).
                    while (nd_lo < nd_size && nd[nd_lo].first <= i)
                        ++nd_lo;
                    std::int64_t stall = stall_div;
                    if (nd_lo < nd_size && nd_suffix[nd_lo] > stall)
                        stall = nd_suffix[nd_lo];
                    std::int64_t t_b =
                        fetch_b > data_ready ? fetch_b : data_ready;
                    if (stall > t_b)
                        t_b = stall;
                    if (t_b < t)
                        t = t_b;

                    if (pe_limited)
                        t = slots.claim(t);
                    exec[i] = t;
                    if (ledger != nullptr)
                        ledger->issue(t);
                    const std::int64_t fin = t + d.lat;
                    if (fin > done)
                        done = fin;

                    // Availability updates (flow-only renaming; stores
                    // publish the last-store completion per address).
                    reg_avail[d.dst] = fin;
                    if (d.mem == 2)
                        mem.put(addrs[i], fin);
                }
            } else {
                for (DynIndex i = paths[r].begin; i < pend_i; ++i) {
                    const DecodedInstr d = dec[i];

                    std::int64_t data_ready = reg_avail[d.src1];
                    const std::int64_t a2 = reg_avail[d.src2];
                    if (a2 > data_ready)
                        data_ready = a2;
                    if (d.mem != 0) {
                        const std::int64_t am = mem.get(addrs[i]);
                        if (am > data_ready)
                            data_ready = am;
                    }

                    std::int64_t t =
                        fetch_a > data_ready ? fetch_a : data_ready;
                    if (pe_limited)
                        t = slots.claim(t);
                    exec[i] = t;
                    if (ledger != nullptr)
                        ledger->issue(t);
                    const std::int64_t fin = t + d.lat;
                    if (fin > done)
                        done = fin;

                    reg_avail[d.dst] = fin;
                    if (d.mem == 2)
                        mem.put(addrs[i], fin);
                }
            }
        }

        // Branch resolution (serialized except under MF).
        std::int64_t res = done;
        if (paths[r].endsInBranch) {
            const obs::hotspot::HotspotPhase hot_resolve(
                hot, "window", obs::hotspot::Phase::Resolve);
            const DynIndex b = paths[r].branchIndex();
            res = exec[b] + branch_lat;
            if (serial_branches)
                res = std::max(res, last_resolve + 1);
            last_resolve = res;
            if (use_cd && !correct[r] &&
                (records[b].backward || join_idx[r] > paths[r].end)) {
                pending.push_back(PendingMispredict{
                    r, join_idx[r], res, records[b].backward});
                stall_valid = false;
            }
        }
        resolve[r] = res;

        // Tree movement: root leaves this path once the path has fully
        // executed and its branch has resolved (+ penalty on mispredict).
        const obs::hotspot::HotspotPhase hot_move(
            hot, "window", obs::hotspot::Phase::TreeMove);
        const std::int64_t move =
            std::max({root_time[r], done,
                      res + (correct[r] ? 0 : penalty)});
        DEE_INVARIANT(move >= now, "root time went backwards at path ",
                      r);
        root_time[r + 1] = move;

        if (!correct[r]) {
            dee_trace_event_if(tracing, tracer, "sim.copyback", 'i',
                               res + penalty, "path",
                               static_cast<std::int64_t>(r));
        }
        dee_trace_event_if(tracing, tracer, "sim.root_advance", 'i',
                           move, "path",
                           static_cast<std::int64_t>(r + 1),
                           "mispredict",
                           correct[r] ? std::int64_t{0}
                                      : std::int64_t{1});
    }
}

OracleSummary
fastOracle(const Trace &trace, const LatencyModel &latency,
           const std::vector<int> *load_latencies,
           obs::SlotLedger *ledger)
{
    // Thread-local decode scratch, independent of the kernel's.
    static thread_local FastScratch scratch;
    const auto &records = trace.records;
    const std::uint64_t n = records.size();
    OracleSummary summary;

    // Decode pass: one sweep over the 40-byte records packs the
    // dataflow working set into 8-byte entries, sizes the memory
    // table and counts branches.
    std::vector<DecodedInstr> &dec = scratch.dec;
    std::vector<std::uint64_t> &addrs = scratch.addrs;
    dec.resize(n);
    addrs.assign(n, 0);
    std::uint64_t mem_ops = 0;
    std::uint64_t max_addr = 0;
    const DecodeTables tabs(latency);
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceRecord &rec = records[i];
        const auto op = static_cast<std::uint8_t>(rec.op);
        DecodedInstr d;
        d.src1 = srcSlot(rec.rs1);
        d.src2 = srcSlot(rec.rs2);
        d.dst = dstSlot(rec.rd);
        d.mem = tabs.mem[op];
        d.lat = tabs.lat[op];
        if (d.mem == 1 && load_latencies != nullptr)
            d.lat = (*load_latencies)[i];
        dec[i] = d;
        if (d.mem != 0) {
            addrs[i] = rec.memAddr;
            ++mem_ops;
            max_addr = std::max(max_addr, rec.memAddr);
        }
        if (rec.isBranch)
            ++summary.branches;
    }

    std::array<std::int64_t, kNumSlots> reg_avail{};
    MemAvail &mem = scratch.mem;
    mem.init(mem_ops, max_addr);

    std::int64_t last = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const DecodedInstr d = dec[i];

        std::int64_t ready = reg_avail[d.src1];
        const std::int64_t a2 = reg_avail[d.src2];
        if (a2 > ready)
            ready = a2;
        if (d.mem != 0) {
            const std::int64_t am = mem.get(addrs[i]);
            if (am > ready)
                ready = am;
        }

        const std::int64_t fin = ready + d.lat;
        if (fin > last)
            last = fin;

        reg_avail[d.dst] = fin;
        if (d.mem == 2)
            mem.put(addrs[i], fin);

        if (ledger != nullptr)
            ledger->issue(ready);
    }
    summary.lastDone = last;
    return summary;
}

} // namespace dee::sim_detail
