#include "core/sim/window_sim.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "cfg/structure.hh"
#include "common/bit_matrix.hh"
#include "common/invariant.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/sim/fast_engine.hh"
#include "core/sim/forward_pass.hh"
#include "obs/hotspot/hotspot.hh"
#include "obs/registry.hh"
#include "obs/timer.hh"
#include "obs/trace_event.hh"

namespace dee
{

const char *
cdModelName(CdModel cd)
{
    switch (cd) {
      case CdModel::Restrictive: return "plain";
      case CdModel::Reduced: return "CD";
      case CdModel::Minimal: return "CD-MF";
    }
    return "???";
}

int
LatencyModel::of(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return intAlu;
      case OpClass::Load: return load;
      case OpClass::Store: return store;
      case OpClass::CondBranch:
      case OpClass::Jump: return branch;
      default: return other;
    }
}

LatencyModel
LatencyModel::realistic()
{
    LatencyModel m;
    m.intAlu = 1;
    m.load = 3;
    m.store = 1;
    m.branch = 1;
    m.other = 1;
    return m;
}

double
SimResult::resolveAtRootFraction() const
{
    if (resolveDepthCounts.empty() || mispredicted == 0)
        return 0.0;
    return static_cast<double>(resolveDepthCounts[0]) /
           static_cast<double>(mispredicted);
}

std::string
SimResult::render() const
{
    std::ostringstream oss;
    oss << "instructions=" << instructions << " cycles=" << cycles
        << " speedup=" << Table::fmt(speedup) << " branches="
        << branches << " mispredicted=" << mispredicted
        << " accuracy=" << Table::fmtPercent(predictionAccuracy);
    if (!resolveDepthCounts.empty()) {
        oss << " resolveAtRoot="
            << Table::fmtPercent(resolveAtRootFraction());
    }
    if (account.valid()) {
        oss << " waste=" << Table::fmtPercent(account.wasteFraction())
            << " useful=" << Table::fmtPercent(account.usefulFraction());
    }
    return oss.str();
}

WindowSim::WindowSim(const Trace &trace, SpecTree tree,
                     const SimConfig &config, const Cfg *cfg)
    : trace_(trace), tree_(std::move(tree)), config_(config), cfg_(cfg)
{
    if (config_.cd != CdModel::Restrictive && cfg_ == nullptr)
        dee_fatal("CD/CD-MF models need a Cfg for control dependencies");
    dee_assert(config_.mispredictPenalty >= 0, "negative penalty");
    dee_assert(config_.peLimit >= 0, "negative PE limit");
    if (config_.loadLatencies &&
        config_.loadLatencies->size() != trace_.size()) {
        dee_fatal("loadLatencies has ", config_.loadLatencies->size(),
                  " entries for a ", trace_.size(), "-record trace");
    }
}

namespace
{

/** Index value meaning "no previous writer". */
constexpr std::int64_t kNoDep = -1;

} // namespace

namespace sim_detail
{

/**
 * The seed forward pass, preserved verbatim as ground truth for the
 * fast engine (tests/test_engine_differential.cc). One pointer-chasing
 * walk and one dependence scan per path, exactly as originally written.
 */
void
referenceForward(ForwardCtx &ctx)
{
    const auto &records = ctx.trace.records;
    const std::uint64_t n = records.size();
    const std::vector<BranchPath> &paths = ctx.paths;
    const std::uint64_t num_paths = paths.size();
    const SpecTree &tree = ctx.tree;
    const SimConfig &config = ctx.config;
    const int window_reach = ctx.windowReach;
    const int penalty = config.mispredictPenalty;
    const bool use_cd = config.cd != CdModel::Restrictive;
    const bool serial_branches = config.cd != CdModel::Minimal;
    const bool use_confidence = config.confidence.accuracy != nullptr;
    const bool profiling = ctx.profiling;
    const bool accounting = ctx.accounting;
    const bool tracing = ctx.tracing;
    const bool hot = ctx.hot;
    obs::Tracer &tracer = ctx.tracer;
    obs::SpeculationProfile &profile = ctx.profile;
    const std::vector<std::uint8_t> &correct = ctx.correct;
    const std::vector<DynIndex> &join_idx = ctx.joinIdx;

    std::vector<std::int64_t> &exec = ctx.exec;
    exec.assign(n, 0);
    std::vector<std::int64_t> &fetch_tree = ctx.fetchTree;
    fetch_tree.assign(num_paths, kNeverFetched);
    std::vector<std::int64_t> &root_time = ctx.rootTime;
    root_time.assign(num_paths + 1, 0);
    std::vector<std::int64_t> &resolve = ctx.resolve;
    resolve.assign(num_paths, 0);
    // Mispredicted branch paths crossed via a not-predicted edge on the
    // walk that fetched each path (alternate state held in hardware).
    std::vector<std::vector<std::uint64_t>> bypass(num_paths);
    // Profiler side data: whether each path's earliest fetch crossed a
    // not-predicted edge (DEE-slot vs. mainline residency), and the
    // tree's Theorem-1 assignment ranks for cp/rank attribution.
    std::vector<std::uint8_t> &fetch_side = ctx.fetchSide;
    fetch_side.assign(profiling ? num_paths : 0, 0);
    const std::vector<int> assignment_ranks =
        profiling && !use_confidence ? tree.assignmentRanks()
                                     : std::vector<int>();

    std::array<std::int64_t, kNumRegs> reg_writer;
    reg_writer.fill(kNoDep);
    std::unordered_map<std::uint64_t, std::int64_t> mem_writer;

    std::deque<PendingMispredict> window_mispredicts;
    std::int64_t last_resolve = -1;
    IssueSlots slots(config.peLimit,
                     accounting && config.peLimit > 0
                         ? &ctx.starvedCycles
                         : nullptr);

    // Effective completion latency of a dynamic instruction (cache-
    // model load latencies override the class latency when provided).
    auto lat_of = [&](DynIndex idx) {
        const OpClass c = opClass(records[idx].op);
        if (c == OpClass::Load && config.loadLatencies)
            return (*config.loadLatencies)[idx];
        return config.latency.of(c);
    };

    for (std::uint64_t r = 0; r < num_paths; ++r) {
        const std::int64_t now = root_time[r];

        // Coverage walk from this root position: relax fetch times of
        // every covered path. Already-fetched code stays fetched (min).
        if (now < fetch_tree[r])
            fetch_tree[r] = now; // distance 0: always covered
        if (use_confidence) {
            const obs::hotspot::HotspotPhase hot_fetch(
                hot, "window", obs::hotspot::Phase::Fetch);
            // Confidence-gated coverage: follow correct predictions to
            // the ML depth; one low-confidence mispredict may be
            // crossed, extending coverage by sideLen paths.
            const int ml_depth = tree.maxDepth();
            std::vector<std::uint64_t> crossed_npred;
            std::int64_t limit = ml_depth;
            for (std::uint64_t d = 0;
                 r + d + 1 < num_paths &&
                 static_cast<std::int64_t>(d) < limit;
                 ++d) {
                if (!paths[r + d].endsInBranch)
                    break;
                if (!correct[r + d]) {
                    if (!crossed_npred.empty())
                        break; // only one mispredict deep, like DEE
                    const TraceRecord &b =
                        records[paths[r + d].branchIndex()];
                    const double acc =
                        b.sid < config.confidence.accuracy->size()
                            ? (*config.confidence.accuracy)[b.sid]
                            : 1.0;
                    if (acc >= config.confidence.threshold)
                        break; // confident branch: no side path here
                    crossed_npred.push_back(r + d);
                    limit = static_cast<std::int64_t>(d) +
                            config.confidence.sideLen + 1;
                }
                if (now < fetch_tree[r + d + 1]) {
                    fetch_tree[r + d + 1] = now;
                    if (profiling)
                        fetch_side[r + d + 1] =
                            crossed_npred.empty() ? 0 : 1;
                    if (!crossed_npred.empty()) {
                        ++ctx.sidePathFetches;
                        DEE_INVARIANT(crossed_npred.front() >= r &&
                                          crossed_npred.back() <= r + d,
                                      "bypass set escapes its walk");
                        bypass[r + d + 1] = crossed_npred;
                        dee_trace_event_if(
                            tracing, tracer, "sim.side_path_fetch", 'i', now,
                            "path",
                            static_cast<std::int64_t>(r + d + 1),
                            "root", static_cast<std::int64_t>(r));
                    }
                }
            }
        } else {
            const obs::hotspot::HotspotPhase hot_fetch(
                hot, "window", obs::hotspot::Phase::Fetch);
            int node = SpecTree::kOrigin;
            std::vector<std::uint64_t> crossed_npred;
            // The walk relaxes fetch times of paths r+d+1, so it must
            // stop at the last path: a cap-truncated trace can end in
            // a branch, making even the final path endsInBranch.
            for (std::uint64_t d = 0; r + d + 1 < num_paths; ++d) {
                if (!paths[r + d].endsInBranch)
                    break;
                node = tree.child(node, correct[r + d] != 0);
                if (node == kNoNode)
                    break;
                if (!correct[r + d])
                    crossed_npred.push_back(r + d);
                if (now < fetch_tree[r + d + 1]) {
                    fetch_tree[r + d + 1] = now;
                    if (profiling) {
                        fetch_side[r + d + 1] =
                            crossed_npred.empty() ? 0 : 1;
                        // Theorem-1 attribution at assignment time:
                        // the covering node's cumulative probability
                        // and resource-assignment rank, charged to
                        // the branch the path hangs off.
                        profile.recordAssignment(
                            records[paths[r + d].branchIndex()].sid,
                            tree.node(node).cp,
                            assignment_ranks[static_cast<std::size_t>(
                                node)]);
                    }
                    if (!crossed_npred.empty()) {
                        ++ctx.sidePathFetches;
                        DEE_INVARIANT(crossed_npred.front() >= r &&
                                          crossed_npred.back() <= r + d,
                                      "bypass set escapes its walk");
                        bypass[r + d + 1] = crossed_npred;
                        dee_trace_event_if(
                            tracing, tracer, "sim.side_path_fetch", 'i', now,
                            "path",
                            static_cast<std::int64_t>(r + d + 1),
                            "root", static_cast<std::int64_t>(r));
                    }
                }
            }
        }

        // Code at the root is never fetched later than the root's own
        // arrival: coverage walks only ever relax fetch times.
        DEE_INVARIANT(fetch_tree[r] <= now, "path ", r,
                      " fetched after its root time");

        // Retire mispredicts whose window reach or control scope ended
        // (divergent ones stall until resolution wherever they are, so
        // only the reach bound retires them).
        while (!window_mispredicts.empty() &&
               (window_mispredicts.front().pathIdx + window_reach <= r ||
                (!window_mispredicts.front().divergent &&
                 window_mispredicts.front().joinIdx <= paths[r].begin))) {
            window_mispredicts.pop_front();
        }

        // Execute this path's instructions (trace order; dependencies
        // always point backward, so their exec times are final).
        const std::int64_t fetch_a = fetch_tree[r];
        const std::int64_t fetch_b =
            root_time[r > static_cast<std::uint64_t>(window_reach)
                          ? r - window_reach
                          : 0];
        std::int64_t done = now;
        {
            const obs::hotspot::HotspotPhase hot_issue(
                hot, "window", obs::hotspot::Phase::Issue);
            for (DynIndex i = paths[r].begin; i < paths[r].end; ++i) {
                const TraceRecord &rec = records[i];

                std::int64_t data_ready = 0;
                auto add_dep = [&](std::int64_t dep) {
                    if (dep == kNoDep)
                        return;
                    const std::int64_t avail =
                        exec[dep] + lat_of(static_cast<DynIndex>(dep));
                    data_ready = std::max(data_ready, avail);
                };
                if (rec.rs1 != kNoReg && rec.rs1 != kZeroReg)
                    add_dep(reg_writer[rec.rs1]);
                if (rec.rs2 != kNoReg && rec.rs2 != kZeroReg)
                    add_dep(reg_writer[rec.rs2]);
                const OpClass cls = opClass(rec.op);
                if (cls == OpClass::Load || cls == OpClass::Store) {
                    auto it = mem_writer.find(rec.memAddr);
                    if (it != mem_writer.end())
                        add_dep(it->second);
                }

                // Route A: speculation-tree coverage.
                std::int64_t t = std::max(fetch_a, data_ready);

                // Route B: reconvergent-window CD execution. Stall on
                // a mispredicted branch if this instruction is inside
                // its dynamic control scope (decided by the branch) or
                // the branch diverges (loop latch: actual-path code
                // was never fetched) — unless an EE/DEE alternate path
                // holds the code.
                if (use_cd) {
                    std::int64_t stall = 0;
                    for (const auto &m : window_mispredicts) {
                        if (i >= m.joinIdx && !m.divergent)
                            continue;
                        if (m.resolveTime + penalty <= stall)
                            continue;
                        const auto &byp = bypass[r];
                        if (std::find(byp.begin(), byp.end(),
                                      m.pathIdx) != byp.end()) {
                            continue; // held by a side path / EE subtree
                        }
                        stall = m.resolveTime + penalty;
                    }
                    const std::int64_t t_b =
                        std::max({fetch_b, data_ready, stall});
                    t = std::min(t, t_b);
                }

                t = slots.claim(t);
                exec[i] = t;
                if (ctx.ledger != nullptr)
                    ctx.ledger->issue(t);
                done = std::max(done, t + lat_of(i));

                // Update renaming tables (flow-only for registers;
                // loads depend on the last store, stores on the last
                // store — "somewhat more restrictive" memory deps, as
                // in CONDEL-2).
                if (rec.rd != kNoReg && rec.rd != kZeroReg)
                    reg_writer[rec.rd] = static_cast<std::int64_t>(i);
                if (cls == OpClass::Store)
                    mem_writer[rec.memAddr] =
                        static_cast<std::int64_t>(i);
            }
        }

        // Branch resolution (serialized except under MF).
        std::int64_t res = done;
        if (paths[r].endsInBranch) {
            const obs::hotspot::HotspotPhase hot_resolve(
                hot, "window", obs::hotspot::Phase::Resolve);
            const DynIndex b = paths[r].branchIndex();
            res = exec[b] + config.latency.of(OpClass::CondBranch);
            if (serial_branches)
                res = std::max(res, last_resolve + 1);
            last_resolve = res;
            if (use_cd && !correct[r] &&
                (records[b].backward || join_idx[r] > paths[r].end)) {
                window_mispredicts.push_back(PendingMispredict{
                    r, join_idx[r], res, records[b].backward});
            }
        }
        resolve[r] = res;

        // Tree movement: root leaves this path once the path has fully
        // executed and its branch has resolved (+ penalty on mispredict).
        const obs::hotspot::HotspotPhase hot_move(
            hot, "window", obs::hotspot::Phase::TreeMove);
        const std::int64_t move =
            std::max({root_time[r], done,
                      res + (correct[r] ? 0 : penalty)});
        // The root only ever advances in time (static-window column
        // ordering: path r+1's column is recycled at or after path r's).
        DEE_INVARIANT(move >= now, "root time went backwards at path ",
                      r);
        root_time[r + 1] = move;

        if (!correct[r]) {
            dee_trace_event_if(tracing, tracer, "sim.copyback", 'i',
                               res + penalty, "path",
                               static_cast<std::int64_t>(r));
        }
        dee_trace_event_if(tracing, tracer, "sim.root_advance", 'i',
                           move, "path",
                           static_cast<std::int64_t>(r + 1),
                           "mispredict",
                           correct[r] ? std::int64_t{0}
                                      : std::int64_t{1});
    }
}

} // namespace sim_detail

SimResult
WindowSim::run(BranchPredictor &predictor) const
{
    obs::ScopedTimer run_timer("sim.window.run_ms");
    obs::Tracer &tracer = obs::Tracer::global();
    const bool tracing =
        DEE_OBS_TRACE_ENABLED != 0 && tracer.enabled();
    // Host hot-path attribution: one hoisted flag (the tracing idiom)
    // guards every per-path marker below; the outer catch-all makes
    // run() glue land on window.other instead of unattributed.
    const bool hot = obs::hotspot::Sampler::process().active();
    const obs::hotspot::HotspotPhase hot_run(
        hot, "window", obs::hotspot::Phase::Other);

    predictor.reset();

    const auto &records = trace_.records;
    const std::uint64_t n = records.size();
    SimResult result;
    result.instructions = n;
    if (n == 0)
        return result;

    // Per-thread run storage: benchmark repetitions and figure sweeps
    // call run() thousands of times, so output and scratch buffers are
    // recycled instead of re-faulted from the allocator every run.
    static thread_local sim_detail::RunArena arena;

    segmentPaths(trace_, arena.paths);
    const std::vector<BranchPath> &paths = arena.paths;
    const std::uint64_t num_paths = paths.size();
    // Static-window reach for route B: the machine holds E_T branch
    // paths of static code regardless of how the tree allocates them
    // between ML and DEE regions (in Levo, DEE paths are extra state
    // columns over the *same* IQ rows), so equal resources mean equal
    // static reach across models.
    const int window_reach =
        config_.windowReachOverride > 0
            ? config_.windowReachOverride
            : std::max(tree_.numPaths(), 1);
    const int penalty = config_.mispredictPenalty;
    const bool use_cd = config_.cd != CdModel::Restrictive;

    // --- Prediction correctness per branch path (functional update) ----
    // The same pass feeds the per-branch confidence estimator used to
    // attribute squashed speculative work to accuracy buckets, and the
    // speculation profiler's per-site execution counts (profiling
    // rides the accounting ledger, so it forces accounting on).
    const bool profiling =
        config_.gatherProfile || obs::profilingRequested();
    const bool accounting = config_.gatherAccounting || profiling;
    obs::SpeculationProfile profile;
    ConfidenceEstimator confidence_meter(
        accounting ? trace_.numStatic : 0);
    std::vector<std::uint8_t> &correct = arena.correct;
    correct.assign(num_paths, 1);
    // The same correctness facts, packed: branch-ending paths and
    // correct predictions as bit sets so the epilogue's mispredict
    // scans run word-parallel (ends &~ correct, then a ctz walk).
    BitVec64 ends(num_paths);
    BitVec64 correct_bits(num_paths);
    {
        // The predictor pass steers fetch, so it samples as fetch. The
        // 2-bit predictor (every figure cell) devirtualizes into one
        // inlined table access per branch.
        const obs::hotspot::HotspotPhase hot_predict(
            hot, "window", obs::hotspot::Phase::Fetch);
        TwoBitPredictor *const twobit =
            dynamic_cast<TwoBitPredictor *>(&predictor);
        for (std::uint64_t k = 0; k < num_paths; ++k) {
            if (!paths[k].endsInBranch) {
                correct_bits.set(k);
                continue;
            }
            ends.set(k);
            const TraceRecord &b = records[paths[k].branchIndex()];
            bool predicted;
            if (twobit != nullptr) {
                predicted = twobit->predictThenUpdate(b.sid, b.taken);
            } else {
                BranchQuery q;
                q.sid = b.sid;
                q.actual = b.taken;
                predicted = predictor.predict(q);
                predictor.update(q, b.taken);
            }
            correct[k] = (predicted == b.taken) ? 1 : 0;
            if (correct[k])
                correct_bits.set(k);
            if (profiling) {
                // Online confidence: the bucket the site occupied
                // when this instance resolved, before its outcome
                // updates the meter.
                profile.recordExecution(
                    b.sid, static_cast<std::int64_t>(b.block),
                    correct[k] == 0,
                    obs::confidenceBucket(
                        confidence_meter.estimate(b.sid)));
            }
            if (accounting)
                confidence_meter.record(b.sid, correct[k] != 0);
            ++result.branches;
            if (!correct[k])
                ++result.mispredicted;
        }
    }
    if (result.branches > 0) {
        result.predictionAccuracy =
            static_cast<double>(result.branches - result.mispredicted) /
            static_cast<double>(result.branches);
    }

    // --- Dynamic control-dependence scopes for route B -------------------
    // A branch instance controls exactly the dynamic instructions between
    // itself and the first subsequent occurrence of its block's immediate
    // postdominator (the join point); from there on, execution no longer
    // depends on which way the branch went. join_idx[k] is that boundary
    // (as a dynamic instruction index) for the branch ending path k.
    std::vector<DynIndex> &join_idx = arena.joinIdx;
    join_idx.clear();
    if (use_cd) {
        join_idx.assign(num_paths, n);
        // One backward sweep: next_occ[b] is the first dynamic index
        // of block b strictly after the sweep cursor, so each branch
        // reads its join point (first post-branch occurrence of its
        // block's immediate postdominator) in O(1). Paths are pushed
        // after their own branch is queried — a branch's block never
        // joins at itself.
        const std::size_t num_blocks = cfg_->numBlocks() + 1;
        std::vector<DynIndex> &next_occ = arena.nextOcc;
        next_occ.assign(num_blocks, n);
        for (std::uint64_t k = num_paths; k-- > 0;) {
            if (paths[k].endsInBranch) {
                const DynIndex b = paths[k].branchIndex();
                const BlockId ipdom = cfg_->ipostdom(records[b].block);
                if (ipdom < cfg_->numBlocks())
                    join_idx[k] = next_occ[ipdom];
            }
            for (DynIndex i = paths[k].end; i-- > paths[k].begin;)
                next_occ[records[i].block] = i;
        }
    }

    // --- Forward pass over branch paths ----------------------------------
    // The accounting ledger outlives the kernel: issue cycles are
    // recorded inline as the kernel computes them (same values, same
    // trace order as the old post-pass over exec[]), and the epilogue
    // adds the stall marks and finalizes.
    std::optional<obs::SlotLedger> ledger;
    if (accounting) {
        ledger.emplace(config_.peLimit > 0
                           ? static_cast<std::uint64_t>(config_.peLimit)
                           : 0,
                       n / 2);
    }
    sim_detail::ForwardCtx ctx{
        .trace = trace_,
        .paths = paths,
        .tree = tree_,
        .config = config_,
        .correct = correct,
        .correctBits = correct_bits,
        .ends = ends,
        .joinIdx = join_idx,
        .windowReach = window_reach,
        .profiling = profiling,
        .accounting = accounting,
        .tracing = tracing,
        .hot = hot,
        .tracer = tracer,
        .profile = profile,
        .ledger = ledger.has_value() ? &*ledger : nullptr,
        .exec = arena.exec,
        .fetchTree = arena.fetchTree,
        .rootTime = arena.rootTime,
        .resolve = arena.resolve,
        .fetchSide = arena.fetchSide,
        .starvedCycles = arena.starvedCycles,
        .decodedLat = arena.decodedLat,
        .sidePathFetches = 0,
    };
    // The kernels assign() the sized outputs; the append-only ones must
    // start empty so nothing leaks across arena reuse.
    arena.starvedCycles.clear();
    arena.decodedLat.clear();
    if (config_.engine == Engine::Reference)
        sim_detail::referenceForward(ctx);
    else
        sim_detail::fastForward(ctx);
    const std::vector<std::int64_t> &exec = ctx.exec;
    const std::vector<std::int64_t> &fetch_tree = ctx.fetchTree;
    const std::vector<std::int64_t> &root_time = ctx.rootTime;
    const std::vector<std::int64_t> &resolve = ctx.resolve;
    const std::vector<std::uint8_t> &fetch_side = ctx.fetchSide;
    result.sidePathFetches = ctx.sidePathFetches;

    // Mispredicted branch paths, for the epilogue's word-parallel scans.
    BitVec64 mispredict_paths = ends;
    mispredict_paths.andNotWith(correct_bits);

    // Effective completion latency of a dynamic instruction; the fast
    // engine exports its decode, saving the per-record class switches.
    auto lat_of = [&](DynIndex idx) -> int {
        if (!ctx.decodedLat.empty())
            return ctx.decodedLat[idx];
        const OpClass c = opClass(records[idx].op);
        if (c == OpClass::Load && config_.loadLatencies)
            return (*config_.loadLatencies)[idx];
        return config_.latency.of(c);
    };

    // --- Totals -----------------------------------------------------------
    std::int64_t last_cycle = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        last_cycle = std::max(
            last_cycle, exec[i] + lat_of(i));
    }
    if (config_.gatherIssueStats) {
        std::unordered_map<std::int64_t, std::uint32_t> per_cycle;
        per_cycle.reserve(n / 4);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint32_t count = ++per_cycle[exec[i]];
            result.peakIssue =
                std::max<std::uint64_t>(result.peakIssue, count);
        }
        if (tracing) {
            // PE-issue occupancy as Chrome counter events, in cycle
            // order so the track renders as a timeline.
            std::vector<std::pair<std::int64_t, std::uint32_t>> cycles(
                per_cycle.begin(), per_cycle.end());
            std::sort(cycles.begin(), cycles.end());
            for (const auto &[cycle, count] : cycles) {
                dee_trace_event_if(tracing, tracer, "sim.issue_occupancy", 'C',
                                cycle, "value",
                                static_cast<std::int64_t>(count));
            }
        }
    }
    last_cycle = std::max(last_cycle, root_time[num_paths]);
    result.cycles = static_cast<std::uint64_t>(last_cycle);
    result.speedup = static_cast<double>(n) /
                     static_cast<double>(std::max<std::int64_t>(
                         last_cycle, 1));

    // --- Where do mispredictions resolve in the tree? ---------------------
    if (config_.gatherResolveStats) {
        result.resolveDepthCounts.assign(
            static_cast<std::size_t>(tree_.maxDepth()) + 1, 0);
        mispredict_paths.forEachSet([&](std::size_t m) {
            // Root position when this branch resolved: the last path
            // whose root-arrival time is <= the resolve time.
            const auto it = std::upper_bound(root_time.begin(),
                                             root_time.end(), resolve[m]);
            const std::uint64_t root_at = static_cast<std::uint64_t>(
                std::distance(root_time.begin(), it)) - 1;
            std::uint64_t depth = m >= root_at ? m - root_at : 0;
            depth = std::min<std::uint64_t>(
                depth, result.resolveDepthCounts.size() - 1);
            ++result.resolveDepthCounts[depth];
        });
    }

    // --- Cycle accounting: classify every issue-slot-cycle ----------------
    // The kernels already recorded every instruction's issue cycle.
    if (accounting) {
        mispredict_paths.forEachSet([&](std::size_t m) {
            // Wrong-path work occupies the machine from the moment the
            // mispredicted branch's path was fetched (its prediction
            // steered fetch from there) until resolution plus the
            // repair penalty; spare slots in that span are squashed
            // work, charged to the branch's confidence bucket.
            const TraceRecord &b = records[paths[m].branchIndex()];
            const std::int64_t begin =
                fetch_tree[m] == sim_detail::kNeverFetched
                    ? root_time[m]
                    : fetch_tree[m];
            ledger->mark(obs::SlotClass::SquashedSpec, begin,
                         resolve[m] + penalty,
                         obs::confidenceBucket(
                             confidence_meter.estimate(b.sid)),
                         b.sid);
        });
        for (const std::int64_t t : ctx.starvedCycles)
            ledger->mark(obs::SlotClass::ResourceStarved, t, t + 1);
        std::unordered_map<std::uint32_t, std::uint64_t> squash_by_site;
        result.account =
            ledger->finalize(result.cycles,
                             tracing ? &tracer : nullptr,
                             profiling ? &squash_by_site : nullptr);
        if (profiling)
            profile.attributeSquash(squash_by_site);
    }

    // --- Speculation profile: latency, residency, loops, identity --------
    if (profiling) {
        ends.forEachSet([&](std::size_t k) {
            const TraceRecord &b = records[paths[k].branchIndex()];
            const std::int64_t begin =
                fetch_tree[k] == sim_detail::kNeverFetched
                    ? root_time[k]
                    : fetch_tree[k];
            profile.recordResolveLatency(b.sid, resolve[k] - begin);
            // The successor path's fetched residency hangs off this
            // branch: DEE-slot cycles when it was held via a
            // not-predicted edge, mainline cycles otherwise.
            if (k + 1 < num_paths &&
                fetch_tree[k + 1] != sim_detail::kNeverFetched) {
                const std::int64_t span =
                    resolve[k + 1] - fetch_tree[k + 1];
                if (span > 0) {
                    profile.addResidency(
                        b.sid, static_cast<std::uint64_t>(span),
                        fetch_side[k + 1] != 0);
                }
            }
        });

        if (cfg_ != nullptr) {
            const Dominators doms(*cfg_);
            const LoopForest forest(*cfg_, doms);
            std::vector<obs::BlockLoopNest> nests(cfg_->numBlocks());
            for (std::size_t bk = 0; bk < nests.size(); ++bk) {
                const auto block = static_cast<BlockId>(bk);
                nests[bk].depth = forest.loopDepth(block);
                for (const BlockId h : forest.enclosingHeaders(block))
                    nests[bk].headers.push_back(
                        static_cast<std::int64_t>(h));
            }
            profile.rollUpLoops(nests);
        } else {
            profile.rollUpLoops({});
        }

        std::string why;
        dee_assert(
            profile.attributionMatches(result.account, &why),
            "speculation-profile attribution identity violated: ", why);
    }

    // Publish run totals into the global registry: a handful of map
    // lookups per run, negligible against the simulation itself.
    obs::Registry &reg = obs::Registry::global();
    ++reg.counter("sim.window.runs");
    reg.counter("sim.window.instructions") += result.instructions;
    reg.counter("sim.window.cycles") += result.cycles;
    reg.counter("sim.window.branches") += result.branches;
    reg.counter("sim.window.mispredicts") += result.mispredicted;
    reg.counter("sim.window.side_path_fetches") +=
        result.sidePathFetches;
    reg.stat("sim.window.speedup").add(result.speedup);
    if (config_.gatherIssueStats) {
        reg.stat("sim.window.peak_issue")
            .add(static_cast<double>(result.peakIssue));
    }
    if (result.account.valid())
        result.account.publish(reg, "window");
    if (profiling && !profile.empty()) {
        const std::string scope = config_.profileScope.empty()
                                      ? "window"
                                      : config_.profileScope;
        profile.setMeta(config_.profileWorkload,
                        config_.profileModel.empty()
                            ? cdModelName(config_.cd)
                            : config_.profileModel);
        profile.publish(reg, scope);
        obs::ProfileStore::global().merge(scope, profile);
        result.profile = std::move(profile);
    }

    return result;
}

std::vector<double>
profileBranchAccuracy(const Trace &trace, const BranchPredictor &pred)
{
    auto probe = pred.clone();
    std::vector<std::uint32_t> seen(trace.numStatic, 0);
    std::vector<std::uint32_t> right(trace.numStatic, 0);
    // Same devirtualization as the simulator's predictor pass: the
    // 2-bit default reduces to one inlined table access per branch.
    if (auto *twobit = dynamic_cast<TwoBitPredictor *>(probe.get())) {
        for (const auto &rec : trace.records) {
            if (!rec.isBranch)
                continue;
            ++seen[rec.sid];
            if (twobit->predictThenUpdate(rec.sid, rec.taken) ==
                rec.taken)
                ++right[rec.sid];
        }
    } else {
        for (const auto &rec : trace.records) {
            if (!rec.isBranch)
                continue;
            BranchQuery q;
            q.sid = rec.sid;
            q.backward = rec.backward;
            q.actual = rec.taken;
            const bool predicted = probe->predict(q);
            probe->update(q, rec.taken);
            ++seen[rec.sid];
            if (predicted == rec.taken)
                ++right[rec.sid];
        }
    }
    std::vector<double> accuracy(trace.numStatic, 1.0);
    for (std::uint32_t s = 0; s < trace.numStatic; ++s) {
        if (seen[s] > 0) {
            accuracy[s] = static_cast<double>(right[s]) /
                          static_cast<double>(seen[s]);
        }
    }
    return accuracy;
}

SimResult
oracleSim(const Trace &trace, LatencyModel latency,
          const std::vector<int> *load_latencies,
          bool gather_accounting, Engine engine)
{
    obs::ScopedTimer run_timer("sim.oracle.run_ms");

    const auto &records = trace.records;
    SimResult result;
    result.instructions = records.size();
    if (records.empty())
        return result;
    if (load_latencies && load_latencies->size() != records.size())
        dee_fatal("oracleSim loadLatencies size mismatch");

    std::int64_t last = 0;
    if (engine == Engine::Fast) {
        // Fused decode + dataflow + accounting in one sweep; the
        // ledger (when accounting) sees the same issue cycles in the
        // same trace order as the reference's separate second pass.
        obs::SlotLedger ledger(0, 0);
        const sim_detail::OracleSummary summary = sim_detail::fastOracle(
            trace, latency, load_latencies,
            gather_accounting ? &ledger : nullptr);
        last = summary.lastDone;
        result.branches = summary.branches;
        result.cycles = static_cast<std::uint64_t>(
            std::max<std::int64_t>(last, 1));
        result.speedup = static_cast<double>(records.size()) /
                         static_cast<double>(result.cycles);
        result.predictionAccuracy = 1.0;

        obs::Registry &reg = obs::Registry::global();
        ++reg.counter("sim.oracle.runs");
        reg.counter("sim.oracle.instructions") += result.instructions;
        reg.stat("sim.oracle.speedup").add(result.speedup);
        if (gather_accounting) {
            result.account = ledger.finalize(result.cycles);
            if (result.account.valid())
                result.account.publish(reg, "oracle");
        }
        return result;
    }

    std::vector<std::int64_t> done(records.size(), 0);
    std::array<std::int64_t, kNumRegs> reg_writer;
    reg_writer.fill(kNoDep);
    std::unordered_map<std::uint64_t, std::int64_t> mem_writer;

    for (std::uint64_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        std::int64_t ready = 0;
        auto add_dep = [&](std::int64_t dep) {
            if (dep != kNoDep)
                ready = std::max(ready, done[dep]);
        };
        if (rec.rs1 != kNoReg && rec.rs1 != kZeroReg)
            add_dep(reg_writer[rec.rs1]);
        if (rec.rs2 != kNoReg && rec.rs2 != kZeroReg)
            add_dep(reg_writer[rec.rs2]);
        const OpClass cls = opClass(rec.op);
        if (cls == OpClass::Load || cls == OpClass::Store) {
            auto it = mem_writer.find(rec.memAddr);
            if (it != mem_writer.end())
                add_dep(it->second);
        }
        const int lat = (cls == OpClass::Load && load_latencies)
                            ? (*load_latencies)[i]
                            : latency.of(cls);
        done[i] = ready + lat;
        last = std::max(last, done[i]);

        if (rec.rd != kNoReg && rec.rd != kZeroReg)
            reg_writer[rec.rd] = static_cast<std::int64_t>(i);
        if (cls == OpClass::Store)
            mem_writer[rec.memAddr] = static_cast<std::int64_t>(i);

        if (rec.isBranch) {
            ++result.branches;
        }
    }
    result.cycles = static_cast<std::uint64_t>(std::max<std::int64_t>(
        last, 1));
    result.speedup = static_cast<double>(records.size()) /
                     static_cast<double>(result.cycles);
    result.predictionAccuracy = 1.0;

    obs::Registry &reg = obs::Registry::global();
    ++reg.counter("sim.oracle.runs");
    reg.counter("sim.oracle.instructions") += result.instructions;
    reg.stat("sim.oracle.speedup").add(result.speedup);

    if (gather_accounting) {
        obs::SlotLedger ledger(0, result.cycles);
        for (std::uint64_t i = 0; i < records.size(); ++i) {
            const OpClass cls = opClass(records[i].op);
            const int lat = (cls == OpClass::Load && load_latencies)
                                ? (*load_latencies)[i]
                                : latency.of(cls);
            ledger.issue(done[i] - lat);
        }
        result.account = ledger.finalize(result.cycles);
        if (result.account.valid())
            result.account.publish(reg, "oracle");
    }
    return result;
}

} // namespace dee
