#include "core/sim/limits.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"

namespace dee
{

LimitResult
limitStudy(const Trace &trace, std::optional<int> bypassed,
           LatencyModel latency)
{
    dee_assert(!bypassed || *bypassed >= 0, "negative bypass count");

    LimitResult result;
    const auto &records = trace.records;
    result.instructions = records.size();
    if (records.empty())
        return result;

    std::vector<std::int64_t> done(records.size(), 0);
    std::array<std::int64_t, kNumRegs> reg_writer;
    reg_writer.fill(-1);
    std::unordered_map<std::uint64_t, std::int64_t> mem_writer;

    // Resolve times of the most recent unretired branches; an
    // instruction waits for every branch except the nearest `bypassed`.
    std::deque<std::int64_t> recent_branch_done;
    std::int64_t ctrl_floor = 0;

    std::int64_t last = 0;
    for (std::uint64_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        std::int64_t ready = ctrl_floor;
        auto add_dep = [&](std::int64_t dep) {
            if (dep >= 0)
                ready = std::max(ready, done[dep]);
        };
        if (rec.rs1 != kNoReg && rec.rs1 != kZeroReg)
            add_dep(reg_writer[rec.rs1]);
        if (rec.rs2 != kNoReg && rec.rs2 != kZeroReg)
            add_dep(reg_writer[rec.rs2]);
        const OpClass cls = opClass(rec.op);
        if (cls == OpClass::Load || cls == OpClass::Store) {
            auto it = mem_writer.find(rec.memAddr);
            if (it != mem_writer.end())
                add_dep(it->second);
        }

        done[i] = ready + latency.of(cls);
        last = std::max(last, done[i]);

        if (rec.rd != kNoReg && rec.rd != kZeroReg)
            reg_writer[rec.rd] = static_cast<std::int64_t>(i);
        if (cls == OpClass::Store)
            mem_writer[rec.memAddr] = static_cast<std::int64_t>(i);

        if (rec.isBranch && bypassed) {
            recent_branch_done.push_back(done[i]);
            // Once more than `bypassed` branches are pending, the
            // oldest one gates all later instructions.
            if (recent_branch_done.size() >
                static_cast<std::size_t>(*bypassed)) {
                ctrl_floor = std::max(ctrl_floor,
                                      recent_branch_done.front());
                recent_branch_done.pop_front();
            }
        }
    }
    result.cycles =
        static_cast<std::uint64_t>(std::max<std::int64_t>(last, 1));
    result.speedup = static_cast<double>(records.size()) /
                     static_cast<double>(result.cycles);
    return result;
}

const char *
lwModelName(LwModel model)
{
    switch (model) {
      case LwModel::SP: return "LW-SP";
      case LwModel::SP_CD: return "LW-SP-CD";
      case LwModel::SP_CD_MF: return "LW-SP-CD-MF";
    }
    return "???";
}

LimitResult
lamWilsonStudy(const Trace &trace, const Cfg &cfg, LwModel model,
               BranchPredictor &predictor, int mispredict_penalty,
               LatencyModel latency)
{
    predictor.reset();
    LimitResult result;
    const auto &records = trace.records;
    result.instructions = records.size();
    if (records.empty())
        return result;

    // Join points of every branch (end of its dynamic control scope).
    std::vector<std::vector<DynIndex>> occurrences(cfg.numBlocks() + 1);
    for (DynIndex i = 0; i < records.size(); ++i)
        occurrences[records[i].block].push_back(i);
    auto join_of = [&](DynIndex b) -> DynIndex {
        const BlockId ipdom = cfg.ipostdom(records[b].block);
        if (ipdom >= cfg.numBlocks())
            return records.size();
        const auto &occ = occurrences[ipdom];
        auto it = std::upper_bound(occ.begin(), occ.end(), b);
        return it == occ.end() ? records.size() : *it;
    };

    std::vector<std::int64_t> done(records.size(), 0);
    std::array<std::int64_t, kNumRegs> reg_writer;
    reg_writer.fill(-1);
    std::unordered_map<std::uint64_t, std::int64_t> mem_writer;

    std::int64_t global_floor = 0; // LW-SP mispredict serialization
    std::int64_t last_resolve = -1;
    // Open mispredict scopes (LW-SP-CD*): stall until `until` while the
    // instruction index is below `joinIdx`.
    struct Scope { DynIndex joinIdx; std::int64_t until; };
    std::vector<Scope> scopes;

    const bool serial = model != LwModel::SP_CD_MF;
    const bool scoped = model != LwModel::SP;

    std::int64_t last = 0;
    for (DynIndex i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        std::int64_t ready = scoped ? 0 : global_floor;
        if (scoped) {
            std::erase_if(scopes, [&](const Scope &s) {
                return i >= s.joinIdx;
            });
            for (const Scope &s : scopes)
                ready = std::max(ready, s.until);
        }
        auto add_dep = [&](std::int64_t dep) {
            if (dep >= 0)
                ready = std::max(ready, done[dep]);
        };
        if (rec.rs1 != kNoReg && rec.rs1 != kZeroReg)
            add_dep(reg_writer[rec.rs1]);
        if (rec.rs2 != kNoReg && rec.rs2 != kZeroReg)
            add_dep(reg_writer[rec.rs2]);
        const OpClass cls = opClass(rec.op);
        if (cls == OpClass::Load || cls == OpClass::Store) {
            auto it = mem_writer.find(rec.memAddr);
            if (it != mem_writer.end())
                add_dep(it->second);
        }

        done[i] = ready + latency.of(cls);
        last = std::max(last, done[i]);

        if (rec.rd != kNoReg && rec.rd != kZeroReg)
            reg_writer[rec.rd] = static_cast<std::int64_t>(i);
        if (cls == OpClass::Store)
            mem_writer[rec.memAddr] = static_cast<std::int64_t>(i);

        if (rec.isBranch) {
            BranchQuery q;
            q.sid = rec.sid;
            q.backward = rec.backward;
            q.actual = rec.taken;
            const bool predicted = predictor.predict(q);
            predictor.update(q, rec.taken);

            std::int64_t resolve = done[i];
            if (serial) {
                resolve = std::max(resolve, last_resolve + 1);
                last_resolve = resolve;
                done[i] = resolve;
                last = std::max(last, resolve);
            }
            if (predicted != rec.taken) {
                const std::int64_t until =
                    resolve + mispredict_penalty;
                if (scoped)
                    scopes.push_back(Scope{join_of(i), until});
                else
                    global_floor = std::max(global_floor, until);
            }
        }
    }
    result.cycles =
        static_cast<std::uint64_t>(std::max<std::int64_t>(last, 1));
    result.speedup = static_cast<double>(records.size()) /
                     static_cast<double>(result.cycles);
    return result;
}

} // namespace dee
