/**
 * @file
 * Branch predictor suite.
 *
 * The paper's simulations use "the classic 2-bit saturating up/down
 * counter method [Smith 81] ... initialized to the non-saturated taken
 * state" with one predictor per static instruction (Levo keeps one
 * predictor per IQ row). Section 4.3 also discusses PAp two-level
 * adaptive prediction [Yeh & Patt 93] with 2-bit history registers as the
 * realizable alternative. Both are provided here, alongside simple static
 * schemes and an oracle, plus the accuracy meter used by step 1 of the
 * static-tree heuristic ("measure the characteristic branch prediction
 * accuracy p").
 */

#ifndef DEE_BPRED_BPRED_HH
#define DEE_BPRED_BPRED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/isa.hh"
#include "trace/trace.hh"

namespace dee
{

/** Everything a predictor may inspect when predicting one branch. */
struct BranchQuery
{
    StaticId sid = 0;    ///< Static branch identity.
    bool backward = false; ///< Branch targets an earlier block.
    bool actual = false; ///< Ground truth — only OraclePredictor reads it.
};

/** Direction predictor interface. Predict first, then update with truth. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction for this branch instance. */
    virtual bool predict(const BranchQuery &q) = 0;

    /** Trains with the resolved direction. */
    virtual void update(const BranchQuery &q, bool taken) = 0;

    /** Restores the power-on state. */
    virtual void reset() = 0;

    /** Fresh instance with identical configuration (power-on state). */
    virtual std::unique_ptr<BranchPredictor> clone() const = 0;

    virtual std::string name() const = 0;
};

/**
 * Classic 2-bit saturating up/down counter per static branch.
 *
 * Counter states 0..3; >= 2 predicts taken. Power-on state is 2, the
 * paper's "non-saturated taken state".
 */
class TwoBitPredictor : public BranchPredictor
{
  public:
    /** @param num_static number of static instructions (table size) */
    explicit TwoBitPredictor(std::uint32_t num_static);

    bool predict(const BranchQuery &q) override;
    void update(const BranchQuery &q, bool taken) override;
    void reset() override;
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override { return "2bit"; }

    /**
     * Fused predict-then-train for one resolved instance, inlined for
     * the simulator's devirtualized predictor pass. Identical state
     * evolution and return value to predict(q) followed by
     * update(q, taken).
     */
    bool
    predictThenUpdate(StaticId sid, bool taken)
    {
        dee_assert(sid < numStatic_, "branch sid out of predictor range");
        std::uint8_t &c = counters_[sid];
        const bool predicted = c >= 2;
        if (taken)
            c = c < 3 ? c + 1 : 3;
        else
            c = c > 0 ? c - 1 : 0;
        return predicted;
    }

  private:
    std::uint32_t numStatic_;
    std::vector<std::uint8_t> counters_;
};

/** Last-outcome (1-bit) predictor per static branch; power-on taken. */
class OneBitPredictor : public BranchPredictor
{
  public:
    explicit OneBitPredictor(std::uint32_t num_static);

    bool predict(const BranchQuery &q) override;
    void update(const BranchQuery &q, bool taken) override;
    void reset() override;
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override { return "1bit"; }

  private:
    std::uint32_t numStatic_;
    std::vector<std::uint8_t> lastTaken_;
};

/** Predicts every branch taken. */
class AlwaysTakenPredictor : public BranchPredictor
{
  public:
    bool predict(const BranchQuery &) override { return true; }
    void update(const BranchQuery &, bool) override {}
    void reset() override {}
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override { return "taken"; }
};

/** Backward-taken / forward-not-taken static heuristic. */
class BtfntPredictor : public BranchPredictor
{
  public:
    bool predict(const BranchQuery &q) override { return q.backward; }
    void update(const BranchQuery &, bool) override {}
    void reset() override {}
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override { return "btfnt"; }
};

/** Perfect prediction (reads the ground truth). */
class OraclePredictor : public BranchPredictor
{
  public:
    bool predict(const BranchQuery &q) override { return q.actual; }
    void update(const BranchQuery &, bool) override {}
    void reset() override {}
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override { return "oracle"; }
};

/**
 * Gshare: global history XOR branch id indexes a shared counter table.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    /** @param log_table_size log2 of the counter table size
     *  @param history_bits global history length */
    GsharePredictor(unsigned log_table_size, unsigned history_bits);

    bool predict(const BranchQuery &q) override;
    void update(const BranchQuery &q, bool taken) override;
    void reset() override;
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override;

  private:
    std::size_t index(const BranchQuery &q) const;

    unsigned logSize_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> counters_;
};

/**
 * PAp two-level adaptive predictor (Yeh & Patt): per-branch history
 * register selecting a per-branch pattern history table of 2-bit
 * counters. The paper proposes this for Levo with 2-bit histories and
 * one PHT per IQ row.
 */
class PApPredictor : public BranchPredictor
{
  public:
    /** @param num_static static instruction count
     *  @param history_bits per-branch history register length */
    PApPredictor(std::uint32_t num_static, unsigned history_bits);

    bool predict(const BranchQuery &q) override;
    void update(const BranchQuery &q, bool taken) override;
    void reset() override;
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override;

  private:
    std::uint32_t numStatic_;
    unsigned historyBits_;
    std::vector<std::uint16_t> histories_;
    std::vector<std::uint8_t> counters_; // numStatic * 2^historyBits
};

/**
 * Tournament predictor: a per-branch 2-bit chooser selects between a
 * local 2-bit counter and a global-history gshare component (the
 * Alpha-21264 style hybrid; here as the "more implementation hardware"
 * end of the paper's 90-96% contemporary-predictor range).
 */
class TournamentPredictor : public BranchPredictor
{
  public:
    TournamentPredictor(std::uint32_t num_static,
                        unsigned gshare_log_size = 14,
                        unsigned gshare_history = 8);

    bool predict(const BranchQuery &q) override;
    void update(const BranchQuery &q, bool taken) override;
    void reset() override;
    std::unique_ptr<BranchPredictor> clone() const override;
    std::string name() const override { return "tournament"; }

  private:
    std::uint32_t numStatic_;
    unsigned gshareLogSize_;
    unsigned gshareHistory_;
    TwoBitPredictor local_;
    GsharePredictor global_;
    std::vector<std::uint8_t> chooser_; ///< >=2 selects global
};

/** Creates a predictor by name: 2bit, 1bit, taken, btfnt, oracle,
 *  gshare, pap, tournament. Fatal on unknown names. */
std::unique_ptr<BranchPredictor>
makePredictor(const std::string &name, std::uint32_t num_static);

/**
 * Running per-static-branch confidence: the measured accuracy of the
 * predictor on each static branch so far, Laplace-smoothed toward the
 * optimistic power-on prior (a branch never seen predicts as well as
 * hardware allows — matching the paper's treatment of unseen branches
 * as accuracy 1.0).
 *
 * Cycle accounting uses this to attribute squashed speculative work to
 * confidence buckets: waste behind a low-confidence branch is exactly
 * the work DEE's side paths rescue, waste behind a high-confidence
 * branch is the residual no placement heuristic can dodge.
 */
class ConfidenceEstimator
{
  public:
    explicit ConfidenceEstimator(std::uint32_t num_static);

    /** Records one resolved prediction for the branch at @p sid. */
    void record(StaticId sid, bool correct);

    /** Smoothed accuracy estimate in (0, 1]; 1.0 before any sample. */
    double estimate(StaticId sid) const;

    std::uint64_t
    samples(StaticId sid) const
    {
        return sid < seen_.size() ? seen_[sid] : 0;
    }

    /** Static-id table size (the profiler's site-id space). */
    std::size_t numStatic() const { return seen_.size(); }

  private:
    std::vector<std::uint32_t> seen_;
    std::vector<std::uint32_t> right_;
};

/** Result of measuring a predictor over one trace. */
struct AccuracyReport
{
    std::uint64_t branches = 0;
    std::uint64_t correct = 0;
    /** Fraction correct — the heuristic's characteristic p. */
    double accuracy = 0.0;
};

/**
 * Heuristic step 1: runs the predictor over every conditional branch of
 * the trace in order (predict, then update) and reports the accuracy.
 *
 * @param backward per-static-branch backwardness, indexed by sid; pass
 *        an empty vector if unknown (treated as forward).
 */
AccuracyReport measureAccuracy(const Trace &trace, BranchPredictor &pred,
                               const std::vector<bool> &backward = {});

/** Computes the per-sid "branch is backward" table from a program. */
std::vector<bool> backwardTable(const Program &program);

} // namespace dee

#endif // DEE_BPRED_BPRED_HH
