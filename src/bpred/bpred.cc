#include "bpred/bpred.hh"

#include <sstream>

#include "common/logging.hh"
#include "obs/registry.hh"

namespace dee
{

namespace
{

/** Weakly-taken power-on state for 2-bit counters. */
constexpr std::uint8_t kWeakTaken = 2;

std::uint8_t
bumpCounter(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

// --- TwoBitPredictor -----------------------------------------------------

TwoBitPredictor::TwoBitPredictor(std::uint32_t num_static)
    : numStatic_(num_static), counters_(num_static, kWeakTaken)
{
    dee_assert(num_static > 0, "TwoBitPredictor needs a non-empty table");
}

bool
TwoBitPredictor::predict(const BranchQuery &q)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    return counters_[q.sid] >= 2;
}

void
TwoBitPredictor::update(const BranchQuery &q, bool taken)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    counters_[q.sid] = bumpCounter(counters_[q.sid], taken);
}

void
TwoBitPredictor::reset()
{
    counters_.assign(counters_.size(), kWeakTaken);
}

std::unique_ptr<BranchPredictor>
TwoBitPredictor::clone() const
{
    return std::make_unique<TwoBitPredictor>(numStatic_);
}

// --- OneBitPredictor -----------------------------------------------------

OneBitPredictor::OneBitPredictor(std::uint32_t num_static)
    : numStatic_(num_static), lastTaken_(num_static, 1)
{
    dee_assert(num_static > 0, "OneBitPredictor needs a non-empty table");
}

bool
OneBitPredictor::predict(const BranchQuery &q)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    return lastTaken_[q.sid] != 0;
}

void
OneBitPredictor::update(const BranchQuery &q, bool taken)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    lastTaken_[q.sid] = taken ? 1 : 0;
}

void
OneBitPredictor::reset()
{
    lastTaken_.assign(lastTaken_.size(), 1);
}

std::unique_ptr<BranchPredictor>
OneBitPredictor::clone() const
{
    return std::make_unique<OneBitPredictor>(numStatic_);
}

// --- Static predictors ---------------------------------------------------

std::unique_ptr<BranchPredictor>
AlwaysTakenPredictor::clone() const
{
    return std::make_unique<AlwaysTakenPredictor>();
}

std::unique_ptr<BranchPredictor>
BtfntPredictor::clone() const
{
    return std::make_unique<BtfntPredictor>();
}

std::unique_ptr<BranchPredictor>
OraclePredictor::clone() const
{
    return std::make_unique<OraclePredictor>();
}

// --- GsharePredictor -----------------------------------------------------

GsharePredictor::GsharePredictor(unsigned log_table_size,
                                 unsigned history_bits)
    : logSize_(log_table_size), historyBits_(history_bits),
      counters_(std::size_t{1} << log_table_size, kWeakTaken)
{
    dee_assert(log_table_size >= 1 && log_table_size <= 24,
               "gshare table size out of range");
    dee_assert(history_bits <= 32, "gshare history too long");
}

std::size_t
GsharePredictor::index(const BranchQuery &q) const
{
    const std::uint64_t mask = (std::uint64_t{1} << logSize_) - 1;
    const std::uint64_t hist_mask =
        historyBits_ >= 64 ? ~0ull : ((std::uint64_t{1} << historyBits_) - 1);
    return static_cast<std::size_t>((q.sid ^ (history_ & hist_mask)) &
                                    mask);
}

bool
GsharePredictor::predict(const BranchQuery &q)
{
    return counters_[index(q)] >= 2;
}

void
GsharePredictor::update(const BranchQuery &q, bool taken)
{
    auto &c = counters_[index(q)];
    c = bumpCounter(c, taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::reset()
{
    history_ = 0;
    counters_.assign(counters_.size(), kWeakTaken);
}

std::unique_ptr<BranchPredictor>
GsharePredictor::clone() const
{
    return std::make_unique<GsharePredictor>(logSize_, historyBits_);
}

std::string
GsharePredictor::name() const
{
    std::ostringstream oss;
    oss << "gshare(" << logSize_ << "," << historyBits_ << ")";
    return oss.str();
}

// --- PApPredictor --------------------------------------------------------

PApPredictor::PApPredictor(std::uint32_t num_static, unsigned history_bits)
    : numStatic_(num_static), historyBits_(history_bits),
      histories_(num_static, 0),
      counters_(std::size_t{num_static} << history_bits, kWeakTaken)
{
    dee_assert(num_static > 0, "PApPredictor needs a non-empty table");
    dee_assert(history_bits >= 1 && history_bits <= 12,
               "PAp history length out of range");
}

bool
PApPredictor::predict(const BranchQuery &q)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    const std::size_t idx =
        (std::size_t{q.sid} << historyBits_) | histories_[q.sid];
    return counters_[idx] >= 2;
}

void
PApPredictor::update(const BranchQuery &q, bool taken)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    const std::size_t idx =
        (std::size_t{q.sid} << historyBits_) | histories_[q.sid];
    counters_[idx] = bumpCounter(counters_[idx], taken);
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << historyBits_) - 1);
    histories_[q.sid] =
        static_cast<std::uint16_t>(((histories_[q.sid] << 1) |
                                    (taken ? 1 : 0)) & mask);
}

void
PApPredictor::reset()
{
    histories_.assign(histories_.size(), 0);
    counters_.assign(counters_.size(), kWeakTaken);
}

std::unique_ptr<BranchPredictor>
PApPredictor::clone() const
{
    return std::make_unique<PApPredictor>(numStatic_, historyBits_);
}

std::string
PApPredictor::name() const
{
    std::ostringstream oss;
    oss << "pap(" << historyBits_ << ")";
    return oss.str();
}

// --- TournamentPredictor ---------------------------------------------------

TournamentPredictor::TournamentPredictor(std::uint32_t num_static,
                                         unsigned gshare_log_size,
                                         unsigned gshare_history)
    : numStatic_(num_static), gshareLogSize_(gshare_log_size),
      gshareHistory_(gshare_history), local_(num_static),
      global_(gshare_log_size, gshare_history),
      chooser_(num_static, kWeakTaken)
{
}

bool
TournamentPredictor::predict(const BranchQuery &q)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    return chooser_[q.sid] >= 2 ? global_.predict(q)
                                : local_.predict(q);
}

void
TournamentPredictor::update(const BranchQuery &q, bool taken)
{
    dee_assert(q.sid < numStatic_, "branch sid out of predictor range");
    const bool local_right = local_.predict(q) == taken;
    const bool global_right = global_.predict(q) == taken;
    // Train the chooser toward whichever component was right.
    if (local_right != global_right)
        chooser_[q.sid] = bumpCounter(chooser_[q.sid], global_right);
    local_.update(q, taken);
    global_.update(q, taken);
}

void
TournamentPredictor::reset()
{
    local_.reset();
    global_.reset();
    chooser_.assign(chooser_.size(), kWeakTaken);
}

std::unique_ptr<BranchPredictor>
TournamentPredictor::clone() const
{
    return std::make_unique<TournamentPredictor>(
        numStatic_, gshareLogSize_, gshareHistory_);
}

// --- Factory and measurement ---------------------------------------------

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &name, std::uint32_t num_static)
{
    if (name == "2bit")
        return std::make_unique<TwoBitPredictor>(num_static);
    if (name == "1bit")
        return std::make_unique<OneBitPredictor>(num_static);
    if (name == "taken")
        return std::make_unique<AlwaysTakenPredictor>();
    if (name == "btfnt")
        return std::make_unique<BtfntPredictor>();
    if (name == "oracle")
        return std::make_unique<OraclePredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>(14, 8);
    if (name == "pap")
        return std::make_unique<PApPredictor>(num_static, 2);
    if (name == "tournament")
        return std::make_unique<TournamentPredictor>(num_static);
    dee_fatal("unknown predictor '", name,
              "' (try: 2bit 1bit taken btfnt oracle gshare pap "
              "tournament)");
}

AccuracyReport
measureAccuracy(const Trace &trace, BranchPredictor &pred,
                const std::vector<bool> &backward)
{
    AccuracyReport report;
    // The 2-bit predictor (the paper's default, and what every cell of
    // the figure sweeps runs) reads neither backwardness nor ground
    // truth, so its measurement devirtualizes into one table access per
    // branch record. Other predictors take the generic virtual path.
    if (auto *twobit = dynamic_cast<TwoBitPredictor *>(&pred)) {
        for (const auto &rec : trace.records) {
            if (!rec.isBranch)
                continue;
            ++report.branches;
            if (twobit->predictThenUpdate(rec.sid, rec.taken) ==
                rec.taken)
                ++report.correct;
        }
    } else {
        for (const auto &rec : trace.records) {
            if (!rec.isBranch)
                continue;
            BranchQuery q;
            q.sid = rec.sid;
            q.backward = rec.sid < backward.size() && backward[rec.sid];
            q.actual = rec.taken;
            const bool predicted = pred.predict(q);
            pred.update(q, rec.taken);
            ++report.branches;
            if (predicted == rec.taken)
                ++report.correct;
        }
    }
    if (report.branches > 0) {
        report.accuracy = static_cast<double>(report.correct) /
                          static_cast<double>(report.branches);
    }

    // Per-predictor accuracy bookkeeping, e.g. bpred.2bit.mispredicts.
    const std::string prefix = "bpred." + pred.name();
    obs::Registry &reg = obs::Registry::global();
    reg.counter(prefix + ".branches") += report.branches;
    reg.counter(prefix + ".mispredicts") +=
        report.branches - report.correct;
    reg.stat(prefix + ".accuracy").add(report.accuracy);
    return report;
}

ConfidenceEstimator::ConfidenceEstimator(std::uint32_t num_static)
    : seen_(num_static, 0), right_(num_static, 0)
{
}

void
ConfidenceEstimator::record(StaticId sid, bool correct)
{
    if (sid >= seen_.size())
        return;
    ++seen_[sid];
    if (correct)
        ++right_[sid];
}

double
ConfidenceEstimator::estimate(StaticId sid) const
{
    if (sid >= seen_.size() || seen_[sid] == 0)
        return 1.0;
    // Laplace smoothing with one optimistic pseudo-sample: a single
    // early mispredict should not brand a branch low-confidence.
    return (static_cast<double>(right_[sid]) + 1.0) /
           (static_cast<double>(seen_[sid]) + 1.0);
}

std::vector<bool>
backwardTable(const Program &program)
{
    std::vector<bool> backward(program.numInstrs(), false);
    for (BlockId b = 0; b < program.numBlocks(); ++b) {
        const auto &blk = program.block(b);
        for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instruction &inst = blk.instrs[i];
            if (isCondBranch(inst.op) && inst.target <= b)
                backward[program.staticId(b, i)] = true;
        }
    }
    return backward;
}

} // namespace dee
