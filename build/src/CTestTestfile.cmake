# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("cfg")
subdirs("exec")
subdirs("trace")
subdirs("workloads")
subdirs("bpred")
subdirs("mem")
subdirs("xform")
subdirs("superscalar")
subdirs("vliw")
subdirs("core")
subdirs("levo")
