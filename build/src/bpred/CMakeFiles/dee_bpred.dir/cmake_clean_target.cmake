file(REMOVE_RECURSE
  "libdee_bpred.a"
)
