# Empty compiler generated dependencies file for dee_bpred.
# This may be replaced when dependencies are built.
