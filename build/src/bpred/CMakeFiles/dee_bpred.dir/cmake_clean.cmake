file(REMOVE_RECURSE
  "CMakeFiles/dee_bpred.dir/bpred.cc.o"
  "CMakeFiles/dee_bpred.dir/bpred.cc.o.d"
  "libdee_bpred.a"
  "libdee_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
