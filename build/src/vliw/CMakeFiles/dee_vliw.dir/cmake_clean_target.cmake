file(REMOVE_RECURSE
  "libdee_vliw.a"
)
