# Empty compiler generated dependencies file for dee_vliw.
# This may be replaced when dependencies are built.
