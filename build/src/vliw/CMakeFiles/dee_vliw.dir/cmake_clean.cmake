file(REMOVE_RECURSE
  "CMakeFiles/dee_vliw.dir/vliw.cc.o"
  "CMakeFiles/dee_vliw.dir/vliw.cc.o.d"
  "libdee_vliw.a"
  "libdee_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
