# Empty compiler generated dependencies file for dee_common.
# This may be replaced when dependencies are built.
