file(REMOVE_RECURSE
  "CMakeFiles/dee_common.dir/cli.cc.o"
  "CMakeFiles/dee_common.dir/cli.cc.o.d"
  "CMakeFiles/dee_common.dir/logging.cc.o"
  "CMakeFiles/dee_common.dir/logging.cc.o.d"
  "CMakeFiles/dee_common.dir/stats.cc.o"
  "CMakeFiles/dee_common.dir/stats.cc.o.d"
  "CMakeFiles/dee_common.dir/table.cc.o"
  "CMakeFiles/dee_common.dir/table.cc.o.d"
  "libdee_common.a"
  "libdee_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
