file(REMOVE_RECURSE
  "libdee_common.a"
)
