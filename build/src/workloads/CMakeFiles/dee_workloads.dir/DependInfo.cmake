
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/random_program.cc" "src/workloads/CMakeFiles/dee_workloads.dir/random_program.cc.o" "gcc" "src/workloads/CMakeFiles/dee_workloads.dir/random_program.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/dee_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/dee_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/dee_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/dee_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/dee_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/dee_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dee_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dee_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dee_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
