# Empty compiler generated dependencies file for dee_workloads.
# This may be replaced when dependencies are built.
