file(REMOVE_RECURSE
  "libdee_workloads.a"
)
