file(REMOVE_RECURSE
  "CMakeFiles/dee_workloads.dir/random_program.cc.o"
  "CMakeFiles/dee_workloads.dir/random_program.cc.o.d"
  "CMakeFiles/dee_workloads.dir/suite.cc.o"
  "CMakeFiles/dee_workloads.dir/suite.cc.o.d"
  "CMakeFiles/dee_workloads.dir/workloads.cc.o"
  "CMakeFiles/dee_workloads.dir/workloads.cc.o.d"
  "libdee_workloads.a"
  "libdee_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
