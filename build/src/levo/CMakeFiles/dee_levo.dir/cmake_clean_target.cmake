file(REMOVE_RECURSE
  "libdee_levo.a"
)
