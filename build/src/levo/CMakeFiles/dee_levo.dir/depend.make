# Empty dependencies file for dee_levo.
# This may be replaced when dependencies are built.
