file(REMOVE_RECURSE
  "CMakeFiles/dee_levo.dir/levo.cc.o"
  "CMakeFiles/dee_levo.dir/levo.cc.o.d"
  "libdee_levo.a"
  "libdee_levo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_levo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
