file(REMOVE_RECURSE
  "libdee_trace.a"
)
