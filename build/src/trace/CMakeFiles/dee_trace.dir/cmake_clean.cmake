file(REMOVE_RECURSE
  "CMakeFiles/dee_trace.dir/trace.cc.o"
  "CMakeFiles/dee_trace.dir/trace.cc.o.d"
  "CMakeFiles/dee_trace.dir/trace_io.cc.o"
  "CMakeFiles/dee_trace.dir/trace_io.cc.o.d"
  "libdee_trace.a"
  "libdee_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
