# Empty dependencies file for dee_trace.
# This may be replaced when dependencies are built.
