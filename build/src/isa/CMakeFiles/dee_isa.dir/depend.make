# Empty dependencies file for dee_isa.
# This may be replaced when dependencies are built.
