file(REMOVE_RECURSE
  "CMakeFiles/dee_isa.dir/assembler.cc.o"
  "CMakeFiles/dee_isa.dir/assembler.cc.o.d"
  "CMakeFiles/dee_isa.dir/builder.cc.o"
  "CMakeFiles/dee_isa.dir/builder.cc.o.d"
  "CMakeFiles/dee_isa.dir/isa.cc.o"
  "CMakeFiles/dee_isa.dir/isa.cc.o.d"
  "libdee_isa.a"
  "libdee_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
