file(REMOVE_RECURSE
  "libdee_isa.a"
)
