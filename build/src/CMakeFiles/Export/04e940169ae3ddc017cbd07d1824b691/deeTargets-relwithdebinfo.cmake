#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "dee::dee_common" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_common.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_common )
list(APPEND _cmake_import_check_files_for_dee::dee_common "${_IMPORT_PREFIX}/lib/libdee_common.a" )

# Import target "dee::dee_isa" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_isa APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_isa PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_isa.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_isa )
list(APPEND _cmake_import_check_files_for_dee::dee_isa "${_IMPORT_PREFIX}/lib/libdee_isa.a" )

# Import target "dee::dee_cfg" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_cfg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_cfg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_cfg.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_cfg )
list(APPEND _cmake_import_check_files_for_dee::dee_cfg "${_IMPORT_PREFIX}/lib/libdee_cfg.a" )

# Import target "dee::dee_exec" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_exec APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_exec PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_exec.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_exec )
list(APPEND _cmake_import_check_files_for_dee::dee_exec "${_IMPORT_PREFIX}/lib/libdee_exec.a" )

# Import target "dee::dee_trace" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_trace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_trace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_trace.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_trace )
list(APPEND _cmake_import_check_files_for_dee::dee_trace "${_IMPORT_PREFIX}/lib/libdee_trace.a" )

# Import target "dee::dee_workloads" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_workloads APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_workloads PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_workloads.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_workloads )
list(APPEND _cmake_import_check_files_for_dee::dee_workloads "${_IMPORT_PREFIX}/lib/libdee_workloads.a" )

# Import target "dee::dee_bpred" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_bpred APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_bpred PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_bpred.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_bpred )
list(APPEND _cmake_import_check_files_for_dee::dee_bpred "${_IMPORT_PREFIX}/lib/libdee_bpred.a" )

# Import target "dee::dee_mem" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_mem APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_mem PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_mem.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_mem )
list(APPEND _cmake_import_check_files_for_dee::dee_mem "${_IMPORT_PREFIX}/lib/libdee_mem.a" )

# Import target "dee::dee_xform" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_xform APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_xform PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_xform.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_xform )
list(APPEND _cmake_import_check_files_for_dee::dee_xform "${_IMPORT_PREFIX}/lib/libdee_xform.a" )

# Import target "dee::dee_superscalar" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_superscalar APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_superscalar PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_superscalar.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_superscalar )
list(APPEND _cmake_import_check_files_for_dee::dee_superscalar "${_IMPORT_PREFIX}/lib/libdee_superscalar.a" )

# Import target "dee::dee_vliw" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_vliw APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_vliw PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_vliw.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_vliw )
list(APPEND _cmake_import_check_files_for_dee::dee_vliw "${_IMPORT_PREFIX}/lib/libdee_vliw.a" )

# Import target "dee::dee_tree" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_tree APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_tree PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_tree.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_tree )
list(APPEND _cmake_import_check_files_for_dee::dee_tree "${_IMPORT_PREFIX}/lib/libdee_tree.a" )

# Import target "dee::dee_sim" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_sim.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_sim )
list(APPEND _cmake_import_check_files_for_dee::dee_sim "${_IMPORT_PREFIX}/lib/libdee_sim.a" )

# Import target "dee::dee_levo" for configuration "RelWithDebInfo"
set_property(TARGET dee::dee_levo APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(dee::dee_levo PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdee_levo.a"
  )

list(APPEND _cmake_import_check_targets dee::dee_levo )
list(APPEND _cmake_import_check_files_for_dee::dee_levo "${_IMPORT_PREFIX}/lib/libdee_levo.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
