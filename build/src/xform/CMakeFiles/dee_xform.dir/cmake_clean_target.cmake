file(REMOVE_RECURSE
  "libdee_xform.a"
)
