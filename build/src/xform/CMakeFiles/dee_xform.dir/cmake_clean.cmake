file(REMOVE_RECURSE
  "CMakeFiles/dee_xform.dir/unroll.cc.o"
  "CMakeFiles/dee_xform.dir/unroll.cc.o.d"
  "libdee_xform.a"
  "libdee_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
