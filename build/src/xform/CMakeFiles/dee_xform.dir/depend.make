# Empty dependencies file for dee_xform.
# This may be replaced when dependencies are built.
