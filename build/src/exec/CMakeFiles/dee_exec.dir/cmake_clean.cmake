file(REMOVE_RECURSE
  "CMakeFiles/dee_exec.dir/interp.cc.o"
  "CMakeFiles/dee_exec.dir/interp.cc.o.d"
  "libdee_exec.a"
  "libdee_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
