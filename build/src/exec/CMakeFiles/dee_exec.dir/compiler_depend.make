# Empty compiler generated dependencies file for dee_exec.
# This may be replaced when dependencies are built.
