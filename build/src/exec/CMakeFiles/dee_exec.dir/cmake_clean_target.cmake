file(REMOVE_RECURSE
  "libdee_exec.a"
)
