file(REMOVE_RECURSE
  "libdee_superscalar.a"
)
