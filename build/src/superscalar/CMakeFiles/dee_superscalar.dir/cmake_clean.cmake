file(REMOVE_RECURSE
  "CMakeFiles/dee_superscalar.dir/superscalar.cc.o"
  "CMakeFiles/dee_superscalar.dir/superscalar.cc.o.d"
  "libdee_superscalar.a"
  "libdee_superscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
