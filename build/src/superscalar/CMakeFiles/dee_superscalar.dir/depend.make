# Empty dependencies file for dee_superscalar.
# This may be replaced when dependencies are built.
