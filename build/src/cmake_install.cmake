# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/isa/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cfg/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/exec/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/trace/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/workloads/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/bpred/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/mem/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/xform/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/superscalar/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/vliw/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/levo/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libdee_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/isa/libdee_isa.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cfg/libdee_cfg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/exec/libdee_exec.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/trace/libdee_trace.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workloads/libdee_workloads.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/bpred/libdee_bpred.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mem/libdee_mem.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/xform/libdee_xform.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/superscalar/libdee_superscalar.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/vliw/libdee_vliw.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/tree/libdee_tree.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/sim/libdee_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/levo/libdee_levo.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/dee" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hh$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/dee/deeTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/dee/deeTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/04e940169ae3ddc017cbd07d1824b691/deeTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/dee/deeTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/dee/deeTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/dee" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/04e940169ae3ddc017cbd07d1824b691/deeTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/dee" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/04e940169ae3ddc017cbd07d1824b691/deeTargets-relwithdebinfo.cmake")
  endif()
endif()

