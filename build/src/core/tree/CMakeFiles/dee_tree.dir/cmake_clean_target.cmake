file(REMOVE_RECURSE
  "libdee_tree.a"
)
