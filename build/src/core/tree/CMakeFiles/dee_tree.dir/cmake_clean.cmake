file(REMOVE_RECURSE
  "CMakeFiles/dee_tree.dir/allocate.cc.o"
  "CMakeFiles/dee_tree.dir/allocate.cc.o.d"
  "CMakeFiles/dee_tree.dir/cp_cost.cc.o"
  "CMakeFiles/dee_tree.dir/cp_cost.cc.o.d"
  "CMakeFiles/dee_tree.dir/geometry.cc.o"
  "CMakeFiles/dee_tree.dir/geometry.cc.o.d"
  "CMakeFiles/dee_tree.dir/spec_tree.cc.o"
  "CMakeFiles/dee_tree.dir/spec_tree.cc.o.d"
  "libdee_tree.a"
  "libdee_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
