
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/tree/allocate.cc" "src/core/tree/CMakeFiles/dee_tree.dir/allocate.cc.o" "gcc" "src/core/tree/CMakeFiles/dee_tree.dir/allocate.cc.o.d"
  "/root/repo/src/core/tree/cp_cost.cc" "src/core/tree/CMakeFiles/dee_tree.dir/cp_cost.cc.o" "gcc" "src/core/tree/CMakeFiles/dee_tree.dir/cp_cost.cc.o.d"
  "/root/repo/src/core/tree/geometry.cc" "src/core/tree/CMakeFiles/dee_tree.dir/geometry.cc.o" "gcc" "src/core/tree/CMakeFiles/dee_tree.dir/geometry.cc.o.d"
  "/root/repo/src/core/tree/spec_tree.cc" "src/core/tree/CMakeFiles/dee_tree.dir/spec_tree.cc.o" "gcc" "src/core/tree/CMakeFiles/dee_tree.dir/spec_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dee_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
