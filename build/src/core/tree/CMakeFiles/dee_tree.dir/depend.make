# Empty dependencies file for dee_tree.
# This may be replaced when dependencies are built.
