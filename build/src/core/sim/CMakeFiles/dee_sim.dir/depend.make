# Empty dependencies file for dee_sim.
# This may be replaced when dependencies are built.
