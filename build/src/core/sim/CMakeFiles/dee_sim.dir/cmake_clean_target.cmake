file(REMOVE_RECURSE
  "libdee_sim.a"
)
