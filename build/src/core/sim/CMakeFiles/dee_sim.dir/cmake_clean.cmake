file(REMOVE_RECURSE
  "CMakeFiles/dee_sim.dir/limits.cc.o"
  "CMakeFiles/dee_sim.dir/limits.cc.o.d"
  "CMakeFiles/dee_sim.dir/models.cc.o"
  "CMakeFiles/dee_sim.dir/models.cc.o.d"
  "CMakeFiles/dee_sim.dir/window_sim.cc.o"
  "CMakeFiles/dee_sim.dir/window_sim.cc.o.d"
  "libdee_sim.a"
  "libdee_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
