file(REMOVE_RECURSE
  "CMakeFiles/dee_cfg.dir/cfg.cc.o"
  "CMakeFiles/dee_cfg.dir/cfg.cc.o.d"
  "CMakeFiles/dee_cfg.dir/liveness.cc.o"
  "CMakeFiles/dee_cfg.dir/liveness.cc.o.d"
  "libdee_cfg.a"
  "libdee_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
