# Empty dependencies file for dee_cfg.
# This may be replaced when dependencies are built.
