file(REMOVE_RECURSE
  "libdee_cfg.a"
)
