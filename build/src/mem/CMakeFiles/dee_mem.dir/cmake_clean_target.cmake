file(REMOVE_RECURSE
  "libdee_mem.a"
)
