file(REMOVE_RECURSE
  "CMakeFiles/dee_mem.dir/cache.cc.o"
  "CMakeFiles/dee_mem.dir/cache.cc.o.d"
  "libdee_mem.a"
  "libdee_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dee_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
