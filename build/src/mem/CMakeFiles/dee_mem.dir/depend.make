# Empty dependencies file for dee_mem.
# This may be replaced when dependencies are built.
