
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dee_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dee_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/dee_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/superscalar/CMakeFiles/dee_superscalar.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/dee_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/sim/CMakeFiles/dee_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/tree/CMakeFiles/dee_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/levo/CMakeFiles/dee_levo.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/dee_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dee_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/dee_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dee_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dee_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dee_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
