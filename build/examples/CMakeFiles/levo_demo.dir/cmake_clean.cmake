file(REMOVE_RECURSE
  "CMakeFiles/levo_demo.dir/levo_demo.cpp.o"
  "CMakeFiles/levo_demo.dir/levo_demo.cpp.o.d"
  "levo_demo"
  "levo_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levo_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
