# Empty dependencies file for levo_demo.
# This may be replaced when dependencies are built.
