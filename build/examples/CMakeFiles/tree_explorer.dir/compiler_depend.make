# Empty compiler generated dependencies file for tree_explorer.
# This may be replaced when dependencies are built.
