# Empty dependencies file for spec_sweep.
# This may be replaced when dependencies are built.
