file(REMOVE_RECURSE
  "CMakeFiles/spec_sweep.dir/spec_sweep.cpp.o"
  "CMakeFiles/spec_sweep.dir/spec_sweep.cpp.o.d"
  "spec_sweep"
  "spec_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
