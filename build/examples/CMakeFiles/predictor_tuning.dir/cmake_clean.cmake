file(REMOVE_RECURSE
  "CMakeFiles/predictor_tuning.dir/predictor_tuning.cpp.o"
  "CMakeFiles/predictor_tuning.dir/predictor_tuning.cpp.o.d"
  "predictor_tuning"
  "predictor_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
