file(REMOVE_RECURSE
  "CMakeFiles/test_vliw.dir/test_vliw.cc.o"
  "CMakeFiles/test_vliw.dir/test_vliw.cc.o.d"
  "test_vliw"
  "test_vliw.pdb"
  "test_vliw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
