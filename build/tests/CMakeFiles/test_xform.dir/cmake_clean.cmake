file(REMOVE_RECURSE
  "CMakeFiles/test_xform.dir/test_xform.cc.o"
  "CMakeFiles/test_xform.dir/test_xform.cc.o.d"
  "test_xform"
  "test_xform.pdb"
  "test_xform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
