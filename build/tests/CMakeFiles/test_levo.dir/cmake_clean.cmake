file(REMOVE_RECURSE
  "CMakeFiles/test_levo.dir/test_levo.cc.o"
  "CMakeFiles/test_levo.dir/test_levo.cc.o.d"
  "test_levo"
  "test_levo.pdb"
  "test_levo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_levo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
