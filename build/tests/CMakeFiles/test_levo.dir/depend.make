# Empty dependencies file for test_levo.
# This may be replaced when dependencies are built.
