file(REMOVE_RECURSE
  "CMakeFiles/test_tree_properties.dir/test_tree_properties.cc.o"
  "CMakeFiles/test_tree_properties.dir/test_tree_properties.cc.o.d"
  "test_tree_properties"
  "test_tree_properties.pdb"
  "test_tree_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
