# Empty dependencies file for test_tree_properties.
# This may be replaced when dependencies are built.
