# Empty dependencies file for test_superscalar.
# This may be replaced when dependencies are built.
