file(REMOVE_RECURSE
  "CMakeFiles/test_superscalar.dir/test_superscalar.cc.o"
  "CMakeFiles/test_superscalar.dir/test_superscalar.cc.o.d"
  "test_superscalar"
  "test_superscalar.pdb"
  "test_superscalar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
