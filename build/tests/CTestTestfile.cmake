# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_levo[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_xform[1]_include.cmake")
include("/root/repo/build/tests/test_superscalar[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_vliw[1]_include.cmake")
include("/root/repo/build/tests/test_tree_properties[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
