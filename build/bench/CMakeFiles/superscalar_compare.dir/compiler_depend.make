# Empty compiler generated dependencies file for superscalar_compare.
# This may be replaced when dependencies are built.
