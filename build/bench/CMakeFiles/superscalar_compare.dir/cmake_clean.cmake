file(REMOVE_RECURSE
  "CMakeFiles/superscalar_compare.dir/superscalar_compare.cpp.o"
  "CMakeFiles/superscalar_compare.dir/superscalar_compare.cpp.o.d"
  "superscalar_compare"
  "superscalar_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superscalar_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
