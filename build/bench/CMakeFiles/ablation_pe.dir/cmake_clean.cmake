file(REMOVE_RECURSE
  "CMakeFiles/ablation_pe.dir/ablation_pe.cpp.o"
  "CMakeFiles/ablation_pe.dir/ablation_pe.cpp.o.d"
  "ablation_pe"
  "ablation_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
