# Empty compiler generated dependencies file for ablation_pe.
# This may be replaced when dependencies are built.
