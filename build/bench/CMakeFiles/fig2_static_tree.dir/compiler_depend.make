# Empty compiler generated dependencies file for fig2_static_tree.
# This may be replaced when dependencies are built.
