file(REMOVE_RECURSE
  "CMakeFiles/fig2_static_tree.dir/fig2_static_tree.cpp.o"
  "CMakeFiles/fig2_static_tree.dir/fig2_static_tree.cpp.o.d"
  "fig2_static_tree"
  "fig2_static_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_static_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
