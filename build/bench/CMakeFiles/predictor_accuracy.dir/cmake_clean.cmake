file(REMOVE_RECURSE
  "CMakeFiles/predictor_accuracy.dir/predictor_accuracy.cpp.o"
  "CMakeFiles/predictor_accuracy.dir/predictor_accuracy.cpp.o.d"
  "predictor_accuracy"
  "predictor_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
