# Empty dependencies file for predictor_accuracy.
# This may be replaced when dependencies are built.
