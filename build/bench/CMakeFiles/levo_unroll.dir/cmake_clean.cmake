file(REMOVE_RECURSE
  "CMakeFiles/levo_unroll.dir/levo_unroll.cpp.o"
  "CMakeFiles/levo_unroll.dir/levo_unroll.cpp.o.d"
  "levo_unroll"
  "levo_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levo_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
