# Empty dependencies file for levo_unroll.
# This may be replaced when dependencies are built.
