file(REMOVE_RECURSE
  "CMakeFiles/vliw_dee.dir/vliw_dee.cpp.o"
  "CMakeFiles/vliw_dee.dir/vliw_dee.cpp.o.d"
  "vliw_dee"
  "vliw_dee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_dee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
