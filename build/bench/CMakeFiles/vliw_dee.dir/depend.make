# Empty dependencies file for vliw_dee.
# This may be replaced when dependencies are built.
