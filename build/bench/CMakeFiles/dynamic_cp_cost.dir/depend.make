# Empty dependencies file for dynamic_cp_cost.
# This may be replaced when dependencies are built.
