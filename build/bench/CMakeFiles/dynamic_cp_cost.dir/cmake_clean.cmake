file(REMOVE_RECURSE
  "CMakeFiles/dynamic_cp_cost.dir/dynamic_cp_cost.cpp.o"
  "CMakeFiles/dynamic_cp_cost.dir/dynamic_cp_cost.cpp.o.d"
  "dynamic_cp_cost"
  "dynamic_cp_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_cp_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
