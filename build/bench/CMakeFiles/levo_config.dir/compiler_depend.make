# Empty compiler generated dependencies file for levo_config.
# This may be replaced when dependencies are built.
