file(REMOVE_RECURSE
  "CMakeFiles/levo_config.dir/levo_config.cpp.o"
  "CMakeFiles/levo_config.dir/levo_config.cpp.o.d"
  "levo_config"
  "levo_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levo_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
