file(REMOVE_RECURSE
  "CMakeFiles/thm1_optimality.dir/thm1_optimality.cpp.o"
  "CMakeFiles/thm1_optimality.dir/thm1_optimality.cpp.o.d"
  "thm1_optimality"
  "thm1_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm1_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
