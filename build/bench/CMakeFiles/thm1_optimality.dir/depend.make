# Empty dependencies file for thm1_optimality.
# This may be replaced when dependencies are built.
