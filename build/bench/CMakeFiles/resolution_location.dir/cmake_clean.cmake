file(REMOVE_RECURSE
  "CMakeFiles/resolution_location.dir/resolution_location.cpp.o"
  "CMakeFiles/resolution_location.dir/resolution_location.cpp.o.d"
  "resolution_location"
  "resolution_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolution_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
