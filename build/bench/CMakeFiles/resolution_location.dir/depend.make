# Empty dependencies file for resolution_location.
# This may be replaced when dependencies are built.
