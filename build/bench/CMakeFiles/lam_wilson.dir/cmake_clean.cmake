file(REMOVE_RECURSE
  "CMakeFiles/lam_wilson.dir/lam_wilson.cpp.o"
  "CMakeFiles/lam_wilson.dir/lam_wilson.cpp.o.d"
  "lam_wilson"
  "lam_wilson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lam_wilson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
