# Empty compiler generated dependencies file for lam_wilson.
# This may be replaced when dependencies are built.
