file(REMOVE_RECURSE
  "CMakeFiles/fig1_tree_comparison.dir/fig1_tree_comparison.cpp.o"
  "CMakeFiles/fig1_tree_comparison.dir/fig1_tree_comparison.cpp.o.d"
  "fig1_tree_comparison"
  "fig1_tree_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tree_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
