# Empty compiler generated dependencies file for riseman_foster.
# This may be replaced when dependencies are built.
