file(REMOVE_RECURSE
  "CMakeFiles/riseman_foster.dir/riseman_foster.cpp.o"
  "CMakeFiles/riseman_foster.dir/riseman_foster.cpp.o.d"
  "riseman_foster"
  "riseman_foster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riseman_foster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
