# Empty compiler generated dependencies file for sc_exclusion.
# This may be replaced when dependencies are built.
