file(REMOVE_RECURSE
  "CMakeFiles/sc_exclusion.dir/sc_exclusion.cpp.o"
  "CMakeFiles/sc_exclusion.dir/sc_exclusion.cpp.o.d"
  "sc_exclusion"
  "sc_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
