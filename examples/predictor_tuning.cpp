/**
 * @file
 * Static-tree heuristic, steps 1-3, end to end (Section 3.1):
 *
 *   1. "Measure the average or characteristic branch prediction
 *      accuracy p of the branch predictor to be employed by the
 *      machine by simulating the predictor on a representative group
 *      of benchmarks."
 *   2. Assume all branches are predicted with accuracy p.
 *   3. "Given the execution resources of the CPU E_T, and p, calculate
 *      the static DEE tree dimensions using the formulae."
 *
 * Then shows the performance consequence of the chosen design.
 *
 * Usage: predictor_tuning [--predictor 2bit] [--et 100] [--scale 2]
 */

#include <algorithm>
#include <cstdio>

#include "bpred/bpred.hh"
#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/sim/models.hh"
#include "core/tree/geometry.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    dee::Cli cli("Static-tree design from measured predictor accuracy");
    cli.flag("predictor", "2bit",
             "2bit | 1bit | taken | btfnt | gshare | pap");
    cli.flag("et", "100", "branch-path resource budget E_T");
    cli.flag("scale", "2", "workload scale factor");
    cli.parse(argc, argv);

    const std::string predictor = cli.str("predictor");
    const int e_t = static_cast<int>(cli.integer("et"));
    const auto suite =
        dee::makeSuite(static_cast<int>(cli.integer("scale")));

    // Step 1: measure p on the representative benchmark group.
    dee::Table acc({"workload", "accuracy"});
    std::vector<double> accs;
    for (const auto &inst : suite) {
        auto meter = dee::makePredictor(predictor,
                                        inst.trace.numStatic);
        const auto backward = dee::backwardTable(inst.program);
        const auto rep =
            dee::measureAccuracy(inst.trace, *meter, backward);
        accs.push_back(rep.accuracy);
        acc.addRow({inst.name, dee::Table::fmt(rep.accuracy, 4)});
    }
    const double p =
        std::clamp(dee::arithmeticMean(accs), 0.5, 0.995);
    acc.addRow({"characteristic p", dee::Table::fmt(p, 4)});
    std::printf("step 1 - measure %s accuracy:\n%s\n",
                predictor.c_str(), acc.render().c_str());

    // Steps 2-3: size the tree.
    const dee::TreeGeometry g = dee::computeGeometry(p, e_t);
    std::printf("step 3 - %s\n\n", g.render().c_str());

    // Consequence: run DEE-CD-MF with that fixed design-time tree.
    dee::ModelRunOptions options;
    options.characteristicP = p;
    std::vector<double> speedups;
    dee::Table perf({"workload", "DEE-CD-MF speedup"});
    for (const auto &inst : suite) {
        auto pred = dee::makePredictor(predictor,
                                       inst.trace.numStatic);
        const dee::SimResult r =
            dee::runModel(dee::ModelKind::DEE_CD_MF, inst.trace,
                          &inst.cfg, *pred, e_t, options);
        speedups.push_back(r.speedup);
        perf.addRow({inst.name, dee::Table::fmt(r.speedup, 2)});
    }
    perf.addRow({"harmonic mean",
                 dee::Table::fmt(dee::harmonicMean(speedups), 2)});
    std::printf("resulting performance at E_T=%d:\n%s", e_t,
                perf.render().c_str());
    return 0;
}
