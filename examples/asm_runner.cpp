/**
 * @file
 * Assemble-and-run: feed a hand-written assembly file (or the built-in
 * demo) through every engine in the repository — interpreter, windowed
 * DEE models, Levo, and the conventional superscalar.
 *
 * Usage: asm_runner [--file prog.s] [--et 100]
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "cfg/cfg.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "core/sim/models.hh"
#include "exec/interp.hh"
#include "isa/assembler.hh"
#include "levo/levo.hh"
#include "superscalar/superscalar.hh"

namespace
{

const char *kDemo = R"(# dot-product-with-compare demo
B0:
    li r1, 0          # i
    li r2, 3000       # n
    li r3, 0          # acc
    li r31, 2654435761
B1:
    mul r4, r1, r31   # a[i] surrogate
    shri r4, r4, 24
    mul r5, r1, r31
    shri r5, r5, 16
    andi r5, r5, 255
    blt r4, r5, B3    # unpredictable compare
B2:
    add r3, r3, r4
B3:
    addi r1, r1, 1
    blt r1, r2, B1
B4:
    sw r3, 256(r0)
    halt
)";

} // namespace

int
main(int argc, char **argv)
{
    dee::Cli cli("Assemble a program and run it on every engine");
    cli.flag("file", "", "assembly file (empty: built-in demo)");
    cli.flag("et", "100", "branch-path resources for windowed models");
    cli.parse(argc, argv);

    dee::Program program = cli.str("file").empty()
                               ? dee::parseAssembly(kDemo)
                               : dee::parseAssemblyFile(cli.str("file"));
    std::printf("program (%zu static instructions):\n%s\n",
                program.numInstrs(), program.disassemble().c_str());

    dee::Cfg cfg(program);
    dee::Interpreter interp(program);
    const dee::ExecResult run = interp.run(50'000'000);
    if (!run.halted)
        dee_fatal("program did not halt within the step cap");
    std::printf("executed %llu dynamic instructions\n\n",
                static_cast<unsigned long long>(run.steps));

    const int e_t = static_cast<int>(cli.integer("et"));
    dee::Table table({"engine", "speedup/ipc", "cycles"});
    for (dee::ModelKind kind :
         {dee::ModelKind::SP, dee::ModelKind::EE, dee::ModelKind::DEE,
          dee::ModelKind::SP_CD_MF, dee::ModelKind::DEE_CD_MF,
          dee::ModelKind::Oracle}) {
        dee::TwoBitPredictor pred(run.trace.numStatic);
        const dee::SimResult r =
            dee::runModel(kind, run.trace, &cfg, pred, e_t);
        table.addRow({std::string("window ") + dee::modelName(kind),
                      dee::Table::fmt(r.speedup, 2),
                      std::to_string(r.cycles)});
    }
    {
        const dee::SuperscalarResult r =
            dee::superscalarSim(run.trace, dee::SuperscalarConfig{});
        table.addRow({"superscalar 4-wide", dee::Table::fmt(r.ipc, 2),
                      std::to_string(r.cycles)});
    }
    {
        dee::LevoMachine machine(program, cfg, dee::LevoConfig{});
        const dee::LevoResult r = machine.run(50'000'000);
        table.addRow({"Levo 32x8", dee::Table::fmt(r.ipc, 2),
                      std::to_string(r.cycles)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
