/**
 * @file
 * Trace capture / inspection / replay utility.
 *
 * Subcommands (via --mode):
 *   capture  generate a workload, run it, write the binary trace file
 *   info     print statistics of a trace file
 *   replay   run the ILP model suite over a previously captured trace
 *
 * This is the capture-once / sweep-many workflow the paper used with
 * its benchmark traces.
 *
 * Examples:
 *   trace_tool --mode capture --workload eqntott --scale 2 --file t.dee
 *   trace_tool --mode info --file t.dee
 *   trace_tool --mode replay --file t.dee --et 100
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "common/logging.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "core/sim/models.hh"
#include "exec/interp.hh"
#include "mem/cache.hh"
#include "trace/trace_io.hh"
#include "workloads/workloads.hh"

namespace
{

int
doCapture(const dee::Cli &cli)
{
    const dee::WorkloadId id =
        dee::workloadByName(cli.str("workload"));
    dee::Program program =
        dee::makeWorkload(id, static_cast<int>(cli.integer("scale")));
    dee::Interpreter interp(program);
    const dee::ExecResult run = interp.run(100'000'000);
    dee::writeTrace(run.trace, cli.str("file"));
    std::printf("captured %zu instructions of %s to %s\n",
                run.trace.size(), dee::workloadName(id),
                cli.str("file").c_str());
    return 0;
}

int
doInfo(const dee::Cli &cli)
{
    const dee::Trace trace = dee::readTrace(cli.str("file"));
    const dee::TraceStats stats = dee::computeStats(trace);
    std::printf("%s\n", stats.render().c_str());

    dee::TwoBitPredictor pred(trace.numStatic);
    const dee::AccuracyReport acc = dee::measureAccuracy(trace, pred);
    std::printf("2-bit accuracy: %.4f over %llu branches\n",
                acc.accuracy,
                static_cast<unsigned long long>(acc.branches));

    const dee::MemoryStats mem =
        dee::computeMemoryLatencies(trace, dee::MemoryConfig{}, nullptr);
    std::printf("memory: %s\n", mem.render().c_str());
    return 0;
}

int
doReplay(const dee::Cli &cli)
{
    const dee::Trace trace = dee::readTrace(cli.str("file"));
    const int e_t = static_cast<int>(cli.integer("et"));

    // No Program is available for a bare trace file, so the CD models
    // are skipped (they need the CFG); the plain models + Oracle run.
    dee::Table table({"model", "speedup", "cycles"});
    for (dee::ModelKind kind :
         {dee::ModelKind::EE, dee::ModelKind::SP, dee::ModelKind::DEE,
          dee::ModelKind::Oracle}) {
        dee::TwoBitPredictor pred(trace.numStatic);
        const dee::SimResult r =
            dee::runModel(kind, trace, nullptr, pred, e_t);
        table.addRow({dee::modelName(kind),
                      dee::Table::fmt(r.speedup, 2),
                      std::to_string(r.cycles)});
    }
    std::printf("replay of %s at E_T=%d:\n%s",
                cli.str("file").c_str(), e_t, table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    dee::Cli cli("Trace capture / inspection / replay");
    cli.flag("mode", "info", "capture | info | replay");
    cli.flag("file", "trace.dee", "trace file path");
    cli.flag("workload", "compress", "workload for capture mode");
    cli.flag("scale", "2", "workload scale for capture mode");
    cli.flag("et", "100", "resource budget for replay mode");
    cli.parse(argc, argv);

    const std::string mode = cli.str("mode");
    if (mode == "capture")
        return doCapture(cli);
    if (mode == "info")
        return doInfo(cli);
    if (mode == "replay")
        return doReplay(cli);
    dee_fatal("unknown --mode '", mode, "'");
}
