/**
 * @file
 * Quickstart: the full DEE pipeline in ~50 lines of API.
 *
 *  1. Generate a workload program (or build your own with
 *     ProgramBuilder).
 *  2. Analyse its CFG and capture a dynamic trace.
 *  3. Measure the predictor's characteristic accuracy p
 *     (static-tree heuristic step 1).
 *  4. Size the static DEE tree for your resource budget E_T.
 *  5. Run the windowed ILP models and compare to the Oracle.
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "core/sim/models.hh"
#include "core/tree/geometry.hh"
#include "workloads/suite.hh"

int
main()
{
    // 1-2. A ready-made instance: program + CFG + dynamic trace.
    const dee::BenchmarkInstance inst =
        dee::makeInstance(dee::WorkloadId::Compress, 2);
    std::printf("workload: %s, %zu dynamic instructions\n",
                inst.name.c_str(), inst.trace.size());

    // 3. Characteristic prediction accuracy of the 2-bit counter.
    dee::TwoBitPredictor predictor(inst.trace.numStatic);
    const double p = dee::characteristicAccuracy(inst.trace, predictor);
    std::printf("characteristic 2-bit accuracy p = %.4f\n", p);

    // 4. Static DEE tree for a 100-branch-path machine (Levo's
    //    target): main line + triangular DEE region.
    const dee::TreeGeometry geometry = dee::computeGeometry(p, 100);
    std::printf("%s\n", geometry.render().c_str());

    // 5. Run the headline models.
    for (dee::ModelKind kind :
         {dee::ModelKind::SP, dee::ModelKind::EE, dee::ModelKind::DEE,
          dee::ModelKind::DEE_CD_MF, dee::ModelKind::Oracle}) {
        dee::TwoBitPredictor pred(inst.trace.numStatic);
        const dee::SimResult r = dee::runModel(
            kind, inst.trace, &inst.cfg, pred, 100);
        std::printf("  %-10s speedup %6.2fx  (%llu cycles)\n",
                    dee::modelName(kind), r.speedup,
                    static_cast<unsigned long long>(r.cycles));
    }
    std::printf("\nDisjoint Eager Execution: speculate down the most\n"
                "probable paths over ALL pending branches — optimal for"
                "\nfixed resources (Theorem 1).\n");
    return 0;
}
