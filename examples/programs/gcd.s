# Euclid's GCD by repeated subtraction, over a table of value pairs.
# Branch-heavy and data-dependent: a good stress for the DEE models.
# Run with: asm_runner --file examples/programs/gcd.s
B0:
    li r1, 0            # pair index
    li r2, 400          # pairs
    li r31, 2654435761
B1:
    mul r3, r1, r31     # a
    shri r3, r3, 40
    addi r3, r3, 1
    mul r4, r1, r31
    shri r4, r4, 28
    andi r4, r4, 4095
    addi r4, r4, 1      # b
B2:
    beq r3, r4, B6      # done when equal
B3:
    blt r3, r4, B5      # subtract smaller from larger
B4:
    sub r3, r3, r4
    j B2
B5:
    sub r4, r4, r3
    j B2
B6:
    sw r3, 0(r1)        # gcd result
    addi r1, r1, 1
    blt r1, r2, B1
B7:
    halt
