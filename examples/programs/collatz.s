# Collatz-style iteration (3n+1 / n/2) for a range of seeds, bounded
# at 48 steps per seed so termination is guaranteed — an
# unpredictable-branch kernel (the parity test is essentially random),
# the kind of code the paper's "general purpose or unpredictable-
# branch-intensive" framing targets.
# Run with: asm_runner --file examples/programs/collatz.s
B0:
    li r1, 1            # seed
    li r2, 600          # seeds
    li r6, 48           # step bound
    li r7, 1
B1:
    addi r3, r1, 0      # n = seed
    li r4, 0            # steps
B2:
    beq r3, r7, B7      # reached 1
B3:
    bge r4, r6, B7      # step bound
B4:
    andi r5, r3, 1
    addi r4, r4, 1
    beq r5, r0, B6      # even?
B5:
    add r5, r3, r3      # odd: n = 3n + 1
    add r3, r5, r3
    addi r3, r3, 1
    j B2
B6:
    shri r3, r3, 1      # even: n /= 2
    j B2
B7:
    sw r4, 4096(r1)     # steps for this seed
    addi r1, r1, 1
    blt r1, r2, B1
B8:
    halt
