/**
 * @file
 * Prints per-workload trace characteristics: instruction counts, branch
 * density, predictor accuracies, oracle (dataflow-limit) speedup.
 *
 * This is step 1 of the paper's static-tree heuristic ("measure the
 * characteristic branch prediction accuracy p") applied to the whole
 * suite, plus the calibration evidence for the SPECint92 substitutions
 * documented in DESIGN.md.
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/sim/window_sim.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    dee::Cli cli("Workload characteristics report");
    cli.flag("scale", "4", "workload scale factor");
    cli.parse(argc, argv);
    const int scale = static_cast<int>(cli.integer("scale"));

    dee::Table table({"workload", "instrs", "branches", "density",
                      "path-len", "2bit-acc", "oracle-speedup"});
    std::vector<double> accs;
    std::vector<double> oracles;

    for (auto &inst : dee::makeSuite(scale)) {
        const dee::TraceStats stats = dee::computeStats(inst.trace);
        dee::TwoBitPredictor pred(inst.trace.numStatic);
        const dee::AccuracyReport acc =
            dee::measureAccuracy(inst.trace, pred);
        const dee::SimResult oracle = dee::oracleSim(inst.trace);
        accs.push_back(acc.accuracy);
        oracles.push_back(oracle.speedup);
        table.addRow({inst.name, std::to_string(stats.instructions),
                      std::to_string(stats.condBranches),
                      dee::Table::fmt(stats.branchFraction, 3),
                      dee::Table::fmt(stats.meanPathLength, 2),
                      dee::Table::fmt(acc.accuracy, 4),
                      dee::Table::fmt(oracle.speedup, 2)});
    }
    table.addRow({"mean", "-", "-", "-", "-",
                  dee::Table::fmt(dee::arithmeticMean(accs), 4),
                  dee::Table::fmt(dee::harmonicMean(oracles), 2)});

    std::printf("%s\n", table.render().c_str());
    std::printf("paper (2-bit, SPECint92): avg accuracy 0.9053; oracle "
                "speedups cc1 23.22, compress 25.86, eqntott 2810.48, "
                "espresso 815.62, xlisp 104.35, HM 53.82\n");
    return 0;
}
