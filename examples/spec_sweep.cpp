/**
 * @file
 * Mini Figure-5 sweep from the public API: every ILP model at each
 * resource level on one workload (or the harmonic mean of all five).
 *
 * Usage: spec_sweep [--workload eqntott|all] [--scale 4]
 *                   [--resources 8,16,32,64,128,256] [--penalty 1]
 */

#include <cstdio>
#include <sstream>

#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/sim/models.hh"
#include "workloads/suite.hh"

namespace
{

std::vector<int>
parseResourceList(const std::string &csv)
{
    std::vector<int> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(std::stoi(item));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    dee::Cli cli("Figure-5 style model sweep");
    cli.flag("workload", "all", "cc1|compress|eqntott|espresso|xlisp|all");
    cli.flag("scale", "4", "workload scale factor");
    cli.flag("resources", "8,16,32,64,128,256",
             "comma-separated branch-path budgets (E_T)");
    cli.flag("penalty", "1", "misprediction penalty in cycles");
    cli.parse(argc, argv);

    const std::string which = cli.str("workload");
    const int scale = static_cast<int>(cli.integer("scale"));
    const std::vector<int> budgets =
        parseResourceList(cli.str("resources"));

    std::vector<dee::BenchmarkInstance> suite;
    if (which == "all") {
        suite = dee::makeSuite(scale);
    } else {
        suite.push_back(
            dee::makeInstance(dee::workloadByName(which), scale));
    }

    dee::ModelRunOptions options;
    options.mispredictPenalty =
        static_cast<int>(cli.integer("penalty"));

    std::vector<std::string> headers{"model"};
    for (int e_t : budgets)
        headers.push_back("ET=" + std::to_string(e_t));
    dee::Table table(headers);

    for (dee::ModelKind kind : dee::allModels()) {
        std::vector<std::string> row{dee::modelName(kind)};
        for (int e_t : budgets) {
            std::vector<double> speedups;
            for (auto &inst : suite) {
                dee::TwoBitPredictor pred(inst.trace.numStatic);
                const dee::SimResult r = dee::runModel(
                    kind, inst.trace, &inst.cfg, pred, e_t, options);
                speedups.push_back(r.speedup);
            }
            row.push_back(
                dee::Table::fmt(dee::harmonicMean(speedups), 2));
            if (kind == dee::ModelKind::Oracle)
                break; // resource-independent
        }
        while (row.size() < headers.size())
            row.push_back(row.back());
        table.addRow(std::move(row));
    }

    std::printf("workload=%s scale=%d penalty=%lld\n%s", which.c_str(),
                scale, static_cast<long long>(cli.integer("penalty")),
                table.render().c_str());
    return 0;
}
