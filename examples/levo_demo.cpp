/**
 * @file
 * Levo machine demo: builds a small program by hand, runs it on the
 * cycle-level Levo model (Section 4 of the paper) and on the
 * sequential interpreter, verifies the architectural state matches,
 * and reports the machine statistics (DEE coverage, VE predication,
 * loop capture, IPC).
 *
 * Usage: levo_demo [--rows 32] [--cols 8] [--dee 3] [--workload ""]
 */

#include <cstdio>

#include "analysis/absint/bounds.hh"
#include "common/cli.hh"
#include "exec/interp.hh"
#include "isa/builder.hh"
#include "levo/levo.hh"
#include "obs/obs.hh"
#include "workloads/workloads.hh"

namespace
{

/** A loop with an unpredictable if inside — DEE path bait. */
dee::Program
demoProgram()
{
    using dee::Opcode;
    dee::ProgramBuilder pb;
    const auto init = pb.newBlock();
    const auto head = pb.newBlock();
    const auto odd = pb.newBlock();
    const auto latch = pb.newBlock();
    const auto done = pb.newBlock();

    pb.switchTo(init);
    pb.loadImm(1, 0);                       // i
    pb.loadImm(2, 200);                     // limit
    pb.loadImm(3, 0);                       // evens
    pb.loadImm(4, 0);                       // odds
    pb.loadImm(31, 0x9e3779b97f4a7c15ll);   // hash constant

    pb.switchTo(head);
    pb.alu(Opcode::Mul, 5, 1, 31);
    pb.aluImm(Opcode::ShrI, 5, 5, 33);
    pb.aluImm(Opcode::AndI, 5, 5, 1);       // pseudo-random bit
    pb.branch(Opcode::BranchEq, 5, dee::kZeroReg, latch); // skip if even

    pb.switchTo(odd);
    pb.aluImm(Opcode::AddI, 4, 4, 1);       // count "odd" bits
    pb.switchTo(latch);
    pb.aluImm(Opcode::AddI, 1, 1, 1);
    pb.branch(Opcode::BranchLt, 1, 2, head);
    pb.switchTo(done);
    pb.store(4, dee::kZeroReg, 0x100);
    pb.halt();
    return pb.build();
}

} // namespace

int
main(int argc, char **argv)
{
    dee::Cli cli("Levo static-instruction-window machine demo");
    cli.flag("rows", "32", "IQ rows (n)");
    cli.flag("cols", "8", "instance columns (m)");
    cli.flag("dee", "3", "DEE path count");
    cli.flag("workload", "",
             "run a suite workload instead of the demo program "
             "(cc1|compress|eqntott|espresso|xlisp)");
    dee::obs::declareFlags(cli);
    cli.parse(argc, argv);
    dee::obs::Session session("levo_demo", cli);

    dee::Program program = cli.str("workload").empty()
                               ? demoProgram()
                               : dee::makeWorkload(
                                     dee::workloadByName(
                                         cli.str("workload")),
                                     1);
    if (cli.str("workload").empty())
        std::printf("program:\n%s\n", program.disassemble().c_str());

    dee::Cfg cfg(program);
    dee::LevoConfig config;
    config.iqRows = static_cast<int>(cli.integer("rows"));
    config.columns = static_cast<int>(cli.integer("cols"));
    config.deePaths = static_cast<int>(cli.integer("dee"));
    if (!cli.str("workload").empty()) {
        // Scope the perf meter as "<workload>.Levo" and publish the
        // static bounds, so dee_lint --xcheck can hold this run's
        // manifest against the critical-path lower bound.
        const dee::WorkloadId id =
            dee::workloadByName(cli.str("workload"));
        config.profileScope = cli.str("workload") + ".Levo";
        dee::analysis::absint::publishStaticBounds({id}, 1, 0);
    }

    // Golden model.
    dee::Interpreter interp(program);
    const dee::ExecResult ref = interp.run(5'000'000, false);

    // Levo.
    dee::LevoMachine machine(program, cfg, config);
    const dee::LevoResult out = machine.run(5'000'000);

    std::printf("Levo (IQ %dx%d, %d DEE paths, ~%.1fM transistors):\n"
                "  %s\n",
                config.iqRows, config.columns, config.deePaths,
                config.transistorEstimateMillions(),
                out.render().c_str());

    bool match = out.instructions == ref.steps;
    for (int r = 0; r < dee::kNumRegs; ++r)
        match = match && out.finalState.regs[r] == ref.state.regs[r];
    for (const auto &[addr, val] : ref.state.memory)
        match = match && out.finalState.readMem(addr) == val;
    std::printf("architectural state vs interpreter: %s\n",
                match ? "MATCH" : "MISMATCH");

    dee::obs::Json &results = session.manifest().results();
    results["instructions"] =
        dee::obs::Json(static_cast<std::uint64_t>(out.instructions));
    results["cycles"] =
        dee::obs::Json(static_cast<std::uint64_t>(out.cycles));
    results["ipc"] = dee::obs::Json(out.ipc);
    results["dee_covered"] =
        dee::obs::Json(static_cast<std::uint64_t>(out.deeCovered));
    results["state_match"] = dee::obs::Json(match);
    return match ? 0 : 1;
}
