/**
 * @file
 * Static-tree geometry explorer: renders the SP / EE / DEE trees and
 * the closed-form DEE dimensions for any (p, E_T) design point.
 *
 * Usage: tree_explorer [--p 0.9] [--et 34] [--strategy dee|sp|ee|greedy]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/tree/geometry.hh"
#include "core/tree/spec_tree.hh"

int
main(int argc, char **argv)
{
    dee::Cli cli("Speculation-tree explorer");
    cli.flag("p", "0.9", "branch prediction accuracy in [0.5, 1)");
    cli.flag("et", "34", "branch-path resource budget E_T");
    cli.flag("strategy", "dee", "dee | greedy | sp | ee | all");
    cli.parse(argc, argv);

    const double p = cli.real("p");
    const int e_t = static_cast<int>(cli.integer("et"));
    const std::string strategy = cli.str("strategy");

    const dee::TreeGeometry g = dee::computeGeometry(p, e_t);
    std::printf("%s\n", g.render().c_str());
    std::printf("  log_p(1-p) = %.2f (ML depth where a side path "
                "first wins)\n\n",
                dee::logP1mp(p));

    auto show = [&](const char *name, const dee::SpecTree &tree) {
        std::printf("--- %s (%d paths, depth %d) ---\n%s\n", name,
                    tree.numPaths(), tree.maxDepth(),
                    tree.render().c_str());
    };
    if (strategy == "sp" || strategy == "all")
        show("SP chain", dee::SpecTree::singlePath(p, e_t));
    if (strategy == "ee" || strategy == "all")
        show("EE level tree", dee::SpecTree::eager(p, e_t));
    if (strategy == "dee" || strategy == "all")
        show("DEE static heuristic", dee::SpecTree::deeStatic(g));
    if (strategy == "greedy" || strategy == "all")
        show("DEE greedy (theory)", dee::SpecTree::deeGreedy(p, e_t));

    // Geometry sweep table around this design point.
    dee::Table sweep({"E_T", "l (ML)", "h_DEE", "DEE paths"});
    for (int et2 : {8, 16, 32, 64, 100, 128, 256}) {
        const dee::TreeGeometry g2 = dee::computeGeometry(p, et2);
        sweep.addRow({std::to_string(et2),
                      std::to_string(g2.mainLineLength),
                      std::to_string(g2.deeHeight),
                      std::to_string(g2.deeHeight *
                                     (g2.deeHeight + 1) / 2)});
    }
    std::printf("geometry sweep at p=%.4f:\n%s", p,
                sweep.render().c_str());
    return 0;
}
